(* CDN capacity planning, end to end: a backbone of regional clusters with
   expensive long-haul links; several content groups must each interconnect
   their replica sites.  The example exercises the whole toolkit:

   - the instance is serialized to the Io text format and re-read (as a
     deployment pipeline would),
   - every algorithm runs via the Solver front end,
   - the winner's run is re-executed under a communication Trace to find
     the hottest links,
   - the solution is exported as Graphviz DOT.

   Run with: dune exec examples/cdn_planning.exe [-- seed] *)

module Graph = Dsf_graph.Graph
module Gen = Dsf_graph.Gen
module Instance = Dsf_graph.Instance
module Solver = Dsf_core.Solver

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 11
  in
  let rng = Dsf_util.Rng.create seed in
  (* Backbone: 4 regions x 15 PoPs, cheap regional links, pricey long-haul. *)
  let g =
    Gen.clustered rng ~clusters:4 ~cluster_size:15 ~intra_extra:12 ~bridges:2
      ~intra_w:4 ~bridge_w:60
  in
  let n = Graph.n g in
  let labels = Gen.spread_labels rng g ~t:16 ~k:4 in
  let inst = Instance.make_ic g labels in
  Format.printf "backbone: %d PoPs, %d links; %d content groups, %d replicas@."
    n (Graph.m g)
    (Instance.component_count inst)
    (Instance.terminal_count inst);

  (* Round-trip through the deployment format. *)
  let file = Filename.temp_file "cdn" ".dsf" in
  let oc = open_out file in
  let ppf = Format.formatter_of_out_channel oc in
  Dsf_graph.Io.print_ic ppf inst;
  Format.pp_print_flush ppf ();
  close_out oc;
  let inst =
    match Dsf_graph.Io.parse_file file with
    | Dsf_graph.Io.Ic i -> i
    | _ -> failwith "unexpected file shape"
  in
  Format.printf "instance written to and re-read from %s@.@." file;

  (* Run the full algorithm portfolio. *)
  Format.printf "%-34s %8s %8s %10s@." "algorithm" "cost" "rounds" "certified";
  let reports = Solver.compare_all inst in
  List.iter
    (fun (r : Solver.report) ->
      assert r.Solver.feasible;
      Format.printf "%-34s %8d %8d %10s@." r.Solver.algorithm r.Solver.weight
        (r.Solver.rounds_simulated + r.Solver.rounds_charged)
        (match r.Solver.dual_lower_bound with
        | Some d -> Printf.sprintf ">= %.0f" d
        | None -> "-"))
    reports;
  let best = List.hd reports in
  Format.printf "@.cheapest plan: %s at cost %d@." best.Solver.algorithm
    best.Solver.weight;

  (* Where does the coordination traffic concentrate?  The per-run
     observer is the domain-safe way to tap the simulator (see the
     domain-safety contract in lib/congest/sim.mli). *)
  let trace = Dsf_congest.Trace.create () in
  let _ =
    Dsf_core.Det_dsf.run ~observer:(Dsf_congest.Trace.observer trace) inst
  in
  Format.printf "@.protocol traffic: %d messages, %d bits; hottest links:@."
    (Dsf_congest.Trace.messages trace)
    (Dsf_congest.Trace.bits trace);
  List.iter
    (fun ((src, dst), bits) ->
      Format.printf "  PoP %d -> PoP %d: %d bits@." src dst bits)
    (Dsf_congest.Trace.hottest_edges trace 5);

  (* Export the plan for the network team. *)
  let dot = Filename.temp_file "cdn" ".dot" in
  Dsf_graph.Dot.to_file dot
    (fun ppf () -> Dsf_graph.Dot.instance ~solution:best.Solver.solution ppf inst)
    ();
  Format.printf "@.DOT rendering written to %s@." dot;
  Sys.remove file
