#!/usr/bin/env sh
# Per-PR check: build, full test suite (including the simulator
# differential suite), and the fast simulator benchmark smoke path so the
# bench harness and BENCH_sim.json emission are exercised on every change.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- smoke
