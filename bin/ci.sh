#!/usr/bin/env sh
# Per-PR check: build, full test suite (including the simulator
# differential suite), and the fast simulator benchmark smoke path so the
# bench harness and JSON emission are exercised on every change.
#
# The smoke bench runs twice — --jobs 1 and --jobs 2 — and the two JSONs
# are diffed with the measured-time fields stripped: the domain pool may
# change wall time only, never a measured quantity (rounds, names,
# parallel_scaling checks).  A diff here means the trial engine leaked
# nondeterminism; see the domain-safety contract in lib/congest/sim.mli.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

scratch=_build/ci
mkdir -p "$scratch"
dune exec bench/main.exe -- smoke --jobs 1 --out "$scratch/bench_j1.json"
dune exec bench/main.exe -- smoke --jobs 2 --out "$scratch/bench_j2.json"

# Strip timings and the fields that legitimately differ between the runs
# (jobs, utc_date); everything left must match exactly.
strip_timing() {
  sed -E \
    -e 's/"(ns_per_run|r_square|minor_words_per_run|rounds_per_sec|active_ns|reference_ns|speedup_vs_j1|speedup|wall_ns)": [^,}]*/"\1": _/g' \
    -e 's/"(utc_date|jobs)": [^,}]*/"\1": _/g' \
    "$1"
}
strip_timing "$scratch/bench_j1.json" > "$scratch/bench_j1.flat"
strip_timing "$scratch/bench_j2.json" > "$scratch/bench_j2.flat"
if ! diff -u "$scratch/bench_j1.flat" "$scratch/bench_j2.flat"; then
  echo "ci: smoke bench output differs between --jobs 1 and --jobs 2" >&2
  exit 1
fi
echo "ci: smoke bench is jobs-invariant"
