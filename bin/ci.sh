#!/usr/bin/env sh
# Per-PR check: build, full test suite (including the simulator
# differential suite), the chaos smoke (hardened-vs-lossless differential
# under a fixed fault plan), and the fast simulator benchmark smoke path
# so the bench harness and JSON emission are exercised on every change.
# A flight-recorder smoke records a flat det_dsf solve and replays every
# inspect query against the log, and the fresh smoke bench is diffed
# against the committed BENCH_sim.json with `bench compare` (exact
# metrics gate, timing advisory).
#
# The smoke bench runs twice — --jobs 1 and --jobs 2 — and the two JSONs
# are diffed with the measured-time fields stripped: the domain pool may
# change wall time only, never a measured quantity (rounds, names,
# parallel_scaling checks, the fault_overhead table).  A diff here means
# the trial engine leaked nondeterminism; see the domain-safety contract
# in lib/congest/sim.mli.
#
# Every bench/smoke invocation runs under a hard wall-clock timeout: a
# hardened run that retransmits forever (or a pool that wedges on a dead
# worker) must fail CI loudly instead of hanging it.
set -eu
cd "$(dirname "$0")/.."

# coreutils timeout when available; plain exec otherwise (dev machines
# without it still get the functional checks).
if command -v timeout >/dev/null 2>&1; then
  with_timeout() { secs="$1"; shift; timeout "$secs" "$@"; }
else
  with_timeout() { shift; "$@"; }
fi

with_timeout 900 dune build

# Static analysis: dsf-lint's repo invariants (no global mutable state in
# lib/, no deprecated Sim globals outside the differential suites, no
# nondeterminism sources, CONGEST message discipline, no catch-all
# handlers, no deprecated Fault.drop_only).  Fails on any finding not in
# lint.baseline (which ships empty and must stay empty).
with_timeout 300 dune build @lint

# Typed static analysis: the Typedtree rules over the libraries' .cmt
# artifacts — domain-race (every flat fp_step provably mutates only
# node-local state) and congest-width (every Pack layout and declared
# fp_msg_bits fits the 62-bit CONGEST word).  Same empty baseline.
with_timeout 300 dune build @lint-typed

with_timeout 900 dune runtest

scratch=_build/ci
mkdir -p "$scratch"

# Chaos smoke: every stock protocol hardened under a fixed drop plan must
# reproduce its lossless final states; main.exe exits nonzero on
# divergence, the timeout catches a retransmit livelock.
with_timeout 300 dune exec bench/main.exe -- chaos

# Chaos soak: the crash-recovery matrix (plan class x protocol x engine)
# at n=1024 — every leg runs hardened with checkpointed recovery and must
# land on the lossless final states.  A round-limit abort prints the
# structured post-mortem before the nonzero exit; the wall-clock timeout
# catches anything that wedges below the round limit.
with_timeout 600 dune exec bench/main.exe -- chaos-soak

# End-to-end chaos differential: a full det_dsf solve under a seeded
# maskable chaos plan (drops + duplicates + finite link outages +
# crash-restart with recovery) must produce the same solution and
# certificate as the fault-free solve, on both engines.  Only the
# solution/certificate lines are compared — round counts legitimately
# differ (the synchronizer pays for the faults).
chaos_extract() { grep -E '^(solution weight|certified)' "$1"; }
with_timeout 300 dune exec bin/dsf_cli.exe -- solve --algo det \
  --topology random --nodes 96 --terminals 12 --components 4 --seed 7 \
  > "$scratch/solve_ff.out"
with_timeout 600 dune exec bin/dsf_cli.exe -- solve --algo det \
  --topology random --nodes 96 --terminals 12 --components 4 --seed 7 \
  --chaos 5 > "$scratch/solve_chaos.out"
with_timeout 600 dune exec bin/dsf_cli.exe -- solve --algo det \
  --topology random --nodes 96 --terminals 12 --components 4 --seed 7 \
  --chaos 5 --flat --jobs 2 > "$scratch/solve_chaos_flat.out"
chaos_extract "$scratch/solve_ff.out" > "$scratch/solve_ff.key"
for leg in solve_chaos solve_chaos_flat; do
  chaos_extract "$scratch/$leg.out" > "$scratch/$leg.key"
  if ! diff -u "$scratch/solve_ff.key" "$scratch/$leg.key"; then
    echo "ci: det_dsf $leg diverged from the fault-free solve" >&2
    exit 1
  fi
done
echo "ci: det_dsf chaos differential ok (classic + flat j2, n=96)"

# Flat-engine smoke: stock workloads through the flat-core engine must
# reproduce the active engine's states, trees and stats exactly (the
# standalone counterpart of the qcheck differential suite).
with_timeout 300 dune exec bench/main.exe -- flatcheck

# Flight-recorder smoke: record a whole flat det_dsf solve at n=1024,
# then run every inspect query against the written log.  The recorder
# must not perturb the solve, the log must parse, and --critical-path
# must print an achieved causal depth next to the paper bound — all
# under a hard timeout so a recorder that wedges the barrier (or an
# inspector that loops on a malformed chain) fails loudly.
with_timeout 300 dune exec bin/dsf_cli.exe -- solve --algo det --flat \
  --jobs 2 --topology path --nodes 1024 --terminals 16 --components 4 \
  --seed 5 --record "$scratch/solve.flightlog" > /dev/null
with_timeout 120 dune exec bin/dsf_cli.exe -- inspect \
  "$scratch/solve.flightlog" --critical-path > "$scratch/inspect_cp.out"
grep -q "critical path: causal depth" "$scratch/inspect_cp.out" || {
  echo "ci: inspect --critical-path printed no causal depth" >&2; exit 1; }
grep -q "paper bound" "$scratch/inspect_cp.out" || {
  echo "ci: inspect --critical-path printed no paper bound" >&2; exit 1; }
with_timeout 120 dune exec bin/dsf_cli.exe -- inspect \
  "$scratch/solve.flightlog" --why 512 > /dev/null
with_timeout 120 dune exec bin/dsf_cli.exe -- inspect \
  "$scratch/solve.flightlog" --hot-edges 5 > /dev/null
echo "ci: flight-recorder smoke ok (record + inspect, flat n=1024)"

# Flat end-to-end smoke: a whole det_dsf solve on the flat engine at
# n=4096 (a path — the wavefront-dominated worst case) must finish inside
# the hard timeout; the CLI certifies the forest and dual locally, so a
# wrong answer fails as loudly as a hang.
with_timeout 300 dune exec bin/dsf_cli.exe -- solve --algo det --flat \
  --jobs 2 --topology path --nodes 4096 --terminals 16 --components 4 \
  --seed 5 > /dev/null
echo "ci: det_dsf flat e2e smoke ok (path n=4096)"

# Sanitizer-on flat e2e smoke: the same solve at n=1024 with the runtime
# ownership sanitizer armed (DSF_SANITIZE=1 arms every run_flat in the
# process).  A cross-partition write, escaped emit closure, or arena
# leak aborts with Sim.Sanitizer_violation (nonzero exit); a livelock
# hits the hard timeout; and because every sanitizer check is read-only,
# the output must be byte-identical to the sanitizer-off run.
with_timeout 300 dune exec bin/dsf_cli.exe -- solve --algo det --flat \
  --jobs 2 --topology path --nodes 1024 --terminals 16 --components 4 \
  --seed 5 > "$scratch/solve_flat1k.out"
with_timeout 300 env DSF_SANITIZE=1 dune exec bin/dsf_cli.exe -- solve \
  --algo det --flat --jobs 2 --topology path --nodes 1024 --terminals 16 \
  --components 4 --seed 5 > "$scratch/solve_flat1k_sanitized.out"
if ! diff -u "$scratch/solve_flat1k.out" "$scratch/solve_flat1k_sanitized.out"; then
  echo "ci: sanitized flat e2e diverged from the unsanitized run" >&2
  exit 1
fi
echo "ci: det_dsf sanitized flat e2e smoke ok (path n=1024, bit-identical)"

with_timeout 600 dune exec bench/main.exe -- smoke --jobs 1 --out "$scratch/bench_j1.json"
with_timeout 600 dune exec bench/main.exe -- smoke --jobs 2 --out "$scratch/bench_j2.json"

# Strip timings and the fields that legitimately differ between the runs
# (jobs, utc_date); everything left must match exactly.
strip_timing() {
  sed -E \
    -e 's/"(ns_per_run|r_square|minor_words_per_run|minor_words_per_round|rounds_per_sec|active_ns|reference_ns|flat_ns|flat_speedup|speedup_vs_j1|speedup_vs_active|speedup|wall_ns|base_wall_ns|rec_wall_ns|overhead_pct|wall_overhead)": [^,}]*/"\1": _/g' \
    -e 's/"(utc_date|jobs)": [^,}]*/"\1": _/g' \
    "$1"
}
strip_timing "$scratch/bench_j1.json" > "$scratch/bench_j1.flat"
strip_timing "$scratch/bench_j2.json" > "$scratch/bench_j2.flat"
if ! diff -u "$scratch/bench_j1.flat" "$scratch/bench_j2.flat"; then
  echo "ci: smoke bench output differs between --jobs 1 and --jobs 2" >&2
  exit 1
fi
echo "ci: smoke bench is jobs-invariant"

# Benchmark regression gate: diff the fresh smoke bench against the
# committed baseline with `bench compare` — deterministic metrics
# (rounds, messages, weights, fault counters) must match the committed
# values exactly, allocation figures stay within the default tolerance,
# and timing differences are advisory (machines differ).  The committed
# baseline is micro-mode, so rows the smoke mode does not measure are
# reported as notes, never failures; compare exits 1 on any regression.
with_timeout 120 dune exec bench/main.exe -- compare \
  BENCH_sim.json "$scratch/bench_j1.json"
echo "ci: bench compare regression gate ok"

# GC gate: the flat engine's steady-state allocation must not regress,
# checked per ported protocol.  Compares every fresh flat_engine
# n=256/jobs=1 minor-words figure against the same workload's row in the
# committed BENCH_sim.json; >20% (plus a small absolute slack for noise
# at these tiny values) on any workload fails the build.  Workloads with
# no committed baseline yet are reported and skipped, never silently.
if command -v python3 >/dev/null 2>&1; then
  python3 - BENCH_sim.json "$scratch/bench_j1.json" <<'EOF'
import json, sys
def words(path):
    try:
        d = json.load(open(path))
    except OSError:
        return None
    out = {}
    for r in d.get("flat_engine", []):
        if r["n"] == 256 and r["jobs"] == 1:
            out[r["workload"]] = r["minor_words_per_round"]
    return out
base, fresh = words(sys.argv[1]), words(sys.argv[2])
assert fresh, "fresh smoke bench has no flat_engine n=256 jobs=1 rows"
if not base:
    print("ci: no committed flat_engine baseline; skipping GC gate")
else:
    failed = []
    for w, f in sorted(fresh.items()):
        b = base.get(w)
        if b is None:
            print("ci: flat-engine GC gate: no committed baseline for %r; skipped" % w)
        elif f > b * 1.2 + 8.0:
            failed.append("%s: %.1f minor words/round vs committed %.1f" % (w, f, b))
        else:
            print("ci: flat-engine GC gate ok: %-24s %.1f words/round (committed %.1f)"
                  % (w, f, b))
    if failed:
        raise SystemExit("ci: flat-engine GC regression:\n  " + "\n  ".join(failed))
EOF
else
  echo "ci: python3 not found; skipping flat-engine GC gate" >&2
fi

# Trace smoke: a small solve with --trace must emit Chrome trace_event JSON
# that parses and contains complete ("ph": "X") spans covering at least 4
# distinct algorithm phases (the telemetry acceptance bar).  Skipped when
# no python3 is around to parse JSON (dev machines still get the write).
with_timeout 300 dune exec bin/dsf_cli.exe -- solve --algo det --nodes 24 \
  --terminals 6 --components 2 --seed 3 \
  --trace "$scratch/trace.json" --trace-format chrome > /dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$scratch/trace.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
spans = [e for e in d["traceEvents"] if e.get("ph") == "X"]
assert spans, "chrome trace has no complete spans"
phases = {e["name"] for e in spans}
assert len(phases) >= 4, "expected >= 4 distinct phases, got %r" % phases
print("ci: chrome trace ok (%d spans, %d phases)" % (len(spans), len(phases)))
EOF
else
  echo "ci: python3 not found; skipping trace JSON validation" >&2
fi
