(* Command-line front end: generate an instance, solve it with any of the
   implemented algorithms, and print the solution plus the round ledger.

   Examples:
     dune exec bin/dsf_cli.exe -- solve --algo det --topology random \
       --nodes 50 --terminals 12 --components 4 --seed 7
     dune exec bin/dsf_cli.exe -- params --topology grid --nodes 49
     dune exec bin/dsf_cli.exe -- gadget --kind ic --universe 12 *)

module Graph = Dsf_graph.Graph
module Gen = Dsf_graph.Gen
module Instance = Dsf_graph.Instance
module Ledger = Dsf_congest.Ledger

let make_graph topology rng n max_w =
  match topology with
  | "random" -> Gen.random_connected rng ~n ~extra_edges:n ~max_w
  | "geometric" -> Gen.random_geometric rng ~n ~radius:0.2 ~max_w
  | "grid" ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Gen.reweight rng ~max_w (Gen.grid ~rows:side ~cols:side)
  | "cycle" -> Gen.reweight rng ~max_w (Gen.cycle (max 3 n))
  | "path" -> Gen.reweight rng ~max_w (Gen.path (max 2 n))
  | "lollipop" -> Gen.reweight rng ~max_w (Gen.lollipop ~clique:(n / 3) ~tail:(n - (n / 3)))
  | "clustered" ->
      let cluster_size = max 4 (n / 4) in
      Gen.clustered rng ~clusters:4 ~cluster_size ~intra_extra:(cluster_size / 2)
        ~bridges:2 ~intra_w:(max 2 (max_w / 8)) ~bridge_w:max_w
  | other -> invalid_arg ("unknown topology: " ^ other)

let load_or_generate file topology rng n t k max_w =
  match file with
  | Some path -> begin
      match Dsf_graph.Io.parse_file path with
      | Dsf_graph.Io.Ic inst -> inst
      | Dsf_graph.Io.Cr cr ->
          (Dsf_core.Transform.cr_to_ic cr).Dsf_core.Transform.value
      | Dsf_graph.Io.Plain _ ->
          invalid_arg "input file has no label/request lines"
    end
  | None ->
      let g = make_graph topology rng n max_w in
      let labels = Gen.spread_labels rng g ~t ~k in
      Instance.make_ic g labels

(* --trace plumbing: parse the format up front (so a typo fails before the
   solve, not after), collect into a fresh per-invocation telemetry, write
   the chosen rendering at the end.  With no explicit --trace-format the
   format is inferred from the file extension: .json is a Chrome
   trace_event file, .jsonl the JSONL dump, anything else (including
   stdout) the console tree. *)
let infer_trace_format path =
  if Filename.check_suffix path ".json" then "chrome"
  else if Filename.check_suffix path ".jsonl" then "jsonl"
  else "console"

let trace_sink ?recorder trace trace_format =
  match trace with
  | None -> None
  | Some path -> begin
      let fmt =
        match trace_format with
        | Some f -> f
        | None -> infer_trace_format path
      in
      match Dsf_congest.Telemetry.sink_format_of_string fmt with
      | Ok format -> Some (Dsf_congest.Telemetry.create ?recorder (), format, path)
      | Error msg -> invalid_arg msg
    end

let telemetry_of_sink = function
  | None -> None
  | Some (tel, _, _) -> Some tel

let write_trace = function
  | None -> ()
  | Some (tel, format, path) ->
      Dsf_congest.Telemetry.write_file tel ~format path;
      if path <> "-" then Format.printf "wrote trace to %s@." path

let solve_cmd algo topology n t k max_w seed eps_den verbose file dot_out jobs
    flat chaos_seed record trace trace_format =
  let recorder =
    Option.map (fun _ -> Dsf_congest.Recorder.create ()) record
  in
  let sink = trace_sink ?recorder trace trace_format in
  let telemetry =
    match telemetry_of_sink sink, recorder with
    | (Some _ as t), _ -> t
    | None, Some r ->
        (* --record without --trace: the recorder still rides on a
           telemetry (that is how the engines and Fault find it); the
           telemetry itself is discarded at the end. *)
        Some (Dsf_congest.Telemetry.create ~recorder:r ())
    | None, None -> None
  in
  let rng = Dsf_util.Rng.create seed in
  let inst = load_or_generate file topology rng n t k max_w in
  let g = inst.Instance.graph in
  let d, wd, s = Dsf_graph.Paths.parameters g in
  Format.printf "instance: n=%d m=%d D=%d WD=%d s=%d t=%d k=%d@." (Graph.n g)
    (Graph.m g) d wd s
    (Instance.terminal_count inst)
    (Instance.component_count inst);
  (* Instance parameters into the flightlog metadata: `inspect
     --critical-path` renders the paper bound sqrt(min(s*t, n))*log2(n) + D
     from exactly these keys. *)
  (match recorder with
  | Some r ->
      List.iter
        (fun (key, v) -> if v >= 0 then Dsf_congest.Recorder.meta_add r key v)
        [
          "n", Graph.n g;
          "m", Graph.m g;
          "D", d;
          "WD", wd;
          "s", s;
          "t", Instance.terminal_count inst;
          "k", Instance.component_count inst;
          "seed", seed;
        ]
  | None -> ());
  (match chaos_seed with
  | Some _ when algo <> "det" ->
      invalid_arg "--chaos is only supported with --algo det"
  | Some cs -> Format.printf "chaos: seed=%d (crash-recovery hardened)@." cs
  | None -> ());
  let chaos =
    Option.map
      (fun cs ->
        Dsf_congest.Fault.chaos (Dsf_congest.Fault.chaos_plan ~seed:cs g))
      chaos_seed
  in
  let weight, solution, ledger =
    match algo with
    | "det" ->
        let flat = if flat then Some true else None in
        let r = Dsf_core.Det_dsf.run ?telemetry ?flat ?chaos ~jobs inst in
        r.Dsf_core.Det_dsf.weight, r.Dsf_core.Det_dsf.solution, Some r.Dsf_core.Det_dsf.ledger
    | "sublinear" ->
        let r = Dsf_core.Det_sublinear.run ?telemetry ~eps_num:1 ~eps_den inst in
        ( r.Dsf_core.Det_sublinear.weight,
          r.Dsf_core.Det_sublinear.solution,
          Some r.Dsf_core.Det_sublinear.ledger )
    | "rand" ->
        let r =
          Dsf_core.Rand_dsf.run ?telemetry ~jobs
            ~rng:(Dsf_util.Rng.split rng 1) inst
        in
        r.Dsf_core.Rand_dsf.weight, r.Dsf_core.Rand_dsf.solution, Some r.Dsf_core.Rand_dsf.ledger
    | "khan" ->
        let r =
          Dsf_congest.Telemetry.span_opt telemetry "khan_baseline" (fun () ->
              Dsf_baseline.Khan_etal.run ~rng:(Dsf_util.Rng.split rng 1) inst)
        in
        ( r.Dsf_baseline.Khan_etal.weight,
          r.Dsf_baseline.Khan_etal.solution,
          Some r.Dsf_baseline.Khan_etal.ledger )
    | "moat" ->
        let r =
          Dsf_congest.Telemetry.span_opt telemetry "centralized_moat"
            (fun () -> Dsf_core.Moat.run inst)
        in
        r.Dsf_core.Moat.weight, r.Dsf_core.Moat.solution, None
    | other -> invalid_arg ("unknown algorithm: " ^ other)
  in
  Format.printf "solution weight: %d (feasible: %b)@." weight
    (Instance.is_feasible inst solution);
  (* Independent re-check of the result (and of the dual certificate when
     the algorithm provides one). *)
  let dual =
    match algo with
    | "det" ->
        let flat = if flat then Some true else None in
        Some
          (Dsf_core.Frac.to_float
             (Dsf_core.Det_dsf.run ?flat ?chaos ~jobs
                inst).Dsf_core.Det_dsf.dual)
    | _ -> None
  in
  (match Dsf_core.Certify.check ?dual inst ~solution with
  | Ok report -> Format.printf "certified: %a@." Dsf_core.Certify.pp report
  | Error msg -> Format.printf "CERTIFICATION FAILED: %s@." msg);
  (match ledger with
  | Some l ->
      Format.printf "rounds: %d (simulated %d, charged %d)@." (Ledger.total l)
        (Ledger.simulated l) (Ledger.charged l);
      if verbose then Format.printf "%a@." Ledger.pp l
  | None -> Format.printf "(centralized reference: no round accounting)@.");
  if verbose then begin
    Format.printf "edges:@.";
    List.iter
      (fun (e : Graph.edge) -> Format.printf "  %d-%d (w=%d)@." e.u e.v e.w)
      (Graph.edge_list_of_set g solution)
  end;
  (match dot_out with
  | Some path ->
      Dsf_graph.Dot.to_file path
        (fun ppf () -> Dsf_graph.Dot.instance ~solution ppf inst)
        ();
      Format.printf "wrote %s@." path
  | None -> ());
  write_trace sink;
  match record, recorder with
  | Some path, Some r ->
      Dsf_congest.Recorder.write_file r path;
      Format.printf "wrote flightlog to %s (%d events)@." path
        (Dsf_congest.Recorder.event_count r)
  | _ -> ()

let compare_cmd topology n t k max_w seed file jobs trace trace_format =
  let sink = trace_sink trace trace_format in
  let telemetry = telemetry_of_sink sink in
  let rng = Dsf_util.Rng.create seed in
  let inst = load_or_generate file topology rng n t k max_w in
  let g = inst.Instance.graph in
  Format.printf "instance: n=%d m=%d t=%d k=%d@." (Graph.n g) (Graph.m g)
    (Instance.terminal_count inst)
    (Instance.component_count inst);
  Format.printf "%-34s %8s %10s %10s %10s@." "algorithm" "weight" "sim" "charged"
    "feasible";
  List.iter
    (fun (r : Dsf_core.Solver.report) ->
      Format.printf "%-34s %8d %10d %10d %10b@." r.Dsf_core.Solver.algorithm
        r.Dsf_core.Solver.weight r.Dsf_core.Solver.rounds_simulated
        r.Dsf_core.Solver.rounds_charged r.Dsf_core.Solver.feasible)
    (Dsf_core.Solver.compare_all ~jobs ?telemetry inst);
  write_trace sink

let verify_cmd inst_file sol_file dual =
  match Dsf_graph.Io.parse_file inst_file with
  | Dsf_graph.Io.Plain _ -> prerr_endline "instance file has no labels/requests"; exit 2
  | Dsf_graph.Io.Cr _ -> prerr_endline "verify expects a DSF-IC (label) file"; exit 2
  | Dsf_graph.Io.Ic inst -> begin
      let g = inst.Instance.graph in
      let text =
        let ic = open_in sol_file in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Dsf_graph.Io.parse_solution g text with
      | Error e -> Format.printf "solution file error: %s@." e; exit 2
      | Ok solution -> begin
          match Dsf_core.Certify.check ?dual inst ~solution with
          | Ok report ->
              Format.printf "%a@." Dsf_core.Certify.pp report;
              if not report.Dsf_core.Certify.feasible then exit 1
          | Error msg ->
              Format.printf "REJECTED: %s@." msg;
              exit 1
        end
    end

let params_cmd topology n max_w seed =
  let rng = Dsf_util.Rng.create seed in
  let g = make_graph topology rng n max_w in
  let d, wd, s = Dsf_graph.Paths.parameters g in
  Format.printf
    "n=%d m=%d max_degree=%d D=%d WD=%d s=%d total_weight=%d@." (Graph.n g)
    (Graph.m g) (Graph.max_degree g) d wd s (Graph.total_weight g)

let gadget_cmd kind universe seed intersect =
  let rng = Dsf_util.Rng.create seed in
  let a, b =
    Dsf_lower_bound.Gadgets.random_sets rng ~universe ~density:0.5
      ~force_intersect:intersect
  in
  match kind with
  | "ic" ->
      let gad = Dsf_lower_bound.Gadgets.ic_gadget ~universe ~a ~b in
      let (res, bits) =
        Dsf_lower_bound.Gadgets.cut_bits gad.Dsf_lower_bound.Gadgets.ic_side
          (fun ~observer ->
            let out =
              Dsf_core.Transform.minimalize ~observer
                gad.Dsf_lower_bound.Gadgets.ic
            in
            Dsf_core.Det_dsf.run ~observer out.Dsf_core.Transform.value)
      in
      Format.printf
        "IC gadget (Fig 1 right): universe=%d disjoint=%b bridge_used=%b cut_bits=%d@."
        universe
        (Dsf_lower_bound.Gadgets.disjoint a b)
        res.Dsf_core.Det_dsf.solution.(gad.Dsf_lower_bound.Gadgets.bridge_edge)
        bits
  | "cr" ->
      let gad = Dsf_lower_bound.Gadgets.cr_gadget ~universe ~rho:2 ~a ~b in
      let (res, bits) =
        Dsf_lower_bound.Gadgets.cut_bits gad.Dsf_lower_bound.Gadgets.cr_side
          (fun ~observer ->
            let out =
              Dsf_core.Transform.cr_to_ic ~observer
                gad.Dsf_lower_bound.Gadgets.cr
            in
            Dsf_core.Det_dsf.run ~observer out.Dsf_core.Transform.value)
      in
      let heavy =
        List.exists
          (fun id -> res.Dsf_core.Det_dsf.solution.(id))
          gad.Dsf_lower_bound.Gadgets.heavy_edges
      in
      Format.printf
        "CR gadget (Fig 1 left): universe=%d disjoint=%b heavy_used=%b cut_bits=%d@."
        universe
        (Dsf_lower_bound.Gadgets.disjoint a b)
        heavy bits
  | other -> invalid_arg ("unknown gadget kind: " ^ other)

(* inspect: offline queries over a dsf-flightlog/1 file written by
   `solve --record`.  With no query flag, print the summary header. *)

let parse_why_spec s =
  let bad () =
    invalid_arg
      (Printf.sprintf "--why expects NODE or NODE:ROUND, got %S" s)
  in
  let int_of s = match int_of_string_opt s with Some v -> v | None -> bad () in
  match String.index_opt s ':' with
  | None -> int_of s, None
  | Some i ->
      ( int_of (String.sub s 0 i),
        Some (int_of (String.sub s (i + 1) (String.length s - i - 1))) )

let inspect_cmd log_path why diff critical hot =
  match Dsf_congest.Recorder.read_file log_path with
  | Error msg ->
      Format.eprintf "inspect: %s: %s@." log_path msg;
      exit 2
  | Ok log ->
      let a = Dsf_congest.Recorder.analyze log in
      let queried = ref false in
      (match why with
      | Some spec ->
          queried := true;
          let node, round = parse_why_spec spec in
          Format.printf "%a" (Dsf_congest.Recorder.pp_why ~node ?round) a
      | None -> ());
      (match diff with
      | Some (r1, r2) ->
          queried := true;
          Format.printf "%a" (Dsf_congest.Recorder.pp_diff ~r1 ~r2) a
      | None -> ());
      if critical then begin
        queried := true;
        Format.printf "%a" Dsf_congest.Recorder.pp_critical_path a
      end;
      (match hot with
      | Some limit ->
          queried := true;
          Format.printf "%a" (Dsf_congest.Recorder.pp_hot_edges ~limit) a
      | None -> ());
      if not !queried then Format.printf "%a" Dsf_congest.Recorder.pp_summary a

open Cmdliner

let topology_arg =
  Arg.(value & opt string "random" & info [ "topology" ] ~doc:"random | geometric | grid | cycle | path | lollipop | clustered")

let nodes_arg = Arg.(value & opt int 50 & info [ "nodes"; "n" ] ~doc:"node count")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed")
let maxw_arg = Arg.(value & opt int 16 & info [ "max-weight" ] ~doc:"max edge weight")

let t_arg = Arg.(value & opt int 10 & info [ "terminals"; "t" ] ~doc:"terminal count")
let k_arg = Arg.(value & opt int 3 & info [ "components"; "k" ] ~doc:"component count")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "file" ] ~doc:"read the instance from a file (Io format) instead of generating")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:"write a telemetry trace (span tree + engine metrics) to this file; '-' = stdout")

let trace_format_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-format" ]
        ~doc:
          "trace rendering: console | jsonl | chrome (Perfetto-loadable \
           trace_event JSON).  Default: inferred from the --trace file \
           extension (.json = chrome, .jsonl = jsonl, else console)")

let record_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"LOG"
        ~doc:
          "record a flight log (dsf-flightlog/1: per-round message sends \
           with fault fates, mail-consuming steps, crash windows, telemetry \
           span boundaries) of the main solve to this file; query it with \
           `dsf_cli inspect'.  The certification re-run is not recorded")

let jobs_arg =
  Arg.(
    value
    & opt int (Dsf_util.Pool.default_jobs ())
    & info [ "jobs"; "j" ]
        ~doc:
          "domains for trial fan-out (repetitions of the randomized \
           algorithm); default = recommended domain count, capped; results \
           are identical for any value")

let flat_arg =
  Arg.(
    value & flag
    & info [ "flat" ]
        ~doc:
          "run the det algorithm's simulated subroutines on the flat-core \
           engine (native ports + boxed adapter); results are bit-identical \
           to the classic engines")

let chaos_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos" ] ~docv:"SEED"
        ~doc:
          "inject a seeded maskable chaos plan (message drops, duplicates, \
           finite link outages, crash-restart with checkpointed recovery) \
           into every simulated subroutine of the det algorithm; the \
           solution is bit-identical to the fault-free run")

let solve_term =
  let algo = Arg.(value & opt string "det" & info [ "algo" ] ~doc:"det | sublinear | rand | khan | moat") in
  let eps_den = Arg.(value & opt int 2 & info [ "eps-den" ] ~doc:"eps = 1/eps-den for sublinear") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"print ledger and edges") in
  let dot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~doc:"write the instance + solution as Graphviz DOT to this file")
  in
  Term.(
    const solve_cmd $ algo $ topology_arg $ nodes_arg $ t_arg $ k_arg $ maxw_arg
    $ seed_arg $ eps_den $ verbose $ file_arg $ dot_out $ jobs_arg $ flat_arg
    $ chaos_arg $ record_arg $ trace_arg $ trace_format_arg)

let compare_term =
  Term.(
    const compare_cmd $ topology_arg $ nodes_arg $ t_arg $ k_arg $ maxw_arg
    $ seed_arg $ file_arg $ jobs_arg $ trace_arg $ trace_format_arg)

let params_term = Term.(const params_cmd $ topology_arg $ nodes_arg $ maxw_arg $ seed_arg)

let verify_term =
  let inst_file =
    Arg.(required & opt (some string) None & info [ "file" ] ~doc:"instance file (Io format)")
  in
  let sol_file =
    Arg.(required & opt (some string) None & info [ "solution" ] ~doc:"solution file (one 'u v' per line)")
  in
  let dual =
    Arg.(value & opt (some float) None & info [ "dual" ] ~doc:"claimed dual lower bound to check")
  in
  Term.(const verify_cmd $ inst_file $ sol_file $ dual)

let gadget_term =
  let kind = Arg.(value & opt string "ic" & info [ "kind" ] ~doc:"ic | cr") in
  let universe = Arg.(value & opt int 12 & info [ "universe" ] ~doc:"SD universe size") in
  let intersect = Arg.(value & flag & info [ "intersect" ] ~doc:"plant one common element") in
  Term.(const gadget_cmd $ kind $ universe $ seed_arg $ intersect)

let inspect_term =
  let log_path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LOG" ~doc:"flightlog file written by solve --record")
  in
  let why =
    Arg.(
      value
      & opt (some string) None
      & info [ "why" ] ~docv:"NODE[:ROUND]"
          ~doc:
            "causal backtrace of a node's state as of a global round \
             (default: end of log): its last mail-consuming step, then the \
             message chain that produced it, back to an origin")
  in
  let diff =
    Arg.(
      value
      & opt (some (pair ~sep:':' int int)) None
      & info [ "diff" ] ~docv:"R1:R2"
          ~doc:"traffic/state delta between two global rounds")
  in
  let critical =
    Arg.(
      value & flag
      & info [ "critical-path" ]
          ~doc:
            "longest causal message chain, whole-run and per telemetry \
             span, next to the paper bound sqrt(min(s*t, n))*log2(n) + D \
             for the recorded instance")
  in
  let hot =
    Arg.(
      value
      & opt ~vopt:(Some 10) (some int) None
      & info [ "hot-edges" ] ~docv:"N"
          ~doc:
            "top N directed edges by causal load (total bits, message \
             count, deepest chain across the edge)")
  in
  Term.(const inspect_cmd $ log_path $ why $ diff $ critical $ hot)

let () =
  let solve = Cmd.v (Cmd.info "solve" ~doc:"solve a generated or loaded DSF instance") solve_term in
  let compare = Cmd.v (Cmd.info "compare" ~doc:"run all algorithms on one instance") compare_term in
  let params = Cmd.v (Cmd.info "params" ~doc:"print graph parameters D, WD, s") params_term in
  let gadget = Cmd.v (Cmd.info "gadget" ~doc:"run a Figure-1 lower-bound gadget") gadget_term in
  let verify = Cmd.v (Cmd.info "verify" ~doc:"re-check a solution file against an instance") verify_term in
  let inspect =
    Cmd.v
      (Cmd.info "inspect"
         ~doc:"query a flightlog recorded with solve --record")
      inspect_term
  in
  let main =
    Cmd.group
      (Cmd.info "dsf_cli" ~doc:"Distributed Steiner Forest (Lenzen & Patt-Shamir, PODC 2014)")
      [ solve; compare; params; gadget; verify; inspect ]
  in
  exit (Cmd.eval main)
