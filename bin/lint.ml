(* dsf-lint driver: scan, subtract suppressions and the baseline, render.
   Exit 0 = clean, 1 = findings, 2 = a file failed to parse or read.
   See the "Static analysis" section of HACKING.md for the rule
   catalogue and the suppression syntax. *)

let usage =
  "dsf-lint: repo-specific invariant checks (determinism, domain-safety, \
   CONGEST discipline)\n\
   usage: lint [options] [paths]   (default paths: lib bin bench)\n\
   options:"

let () =
  let json = ref false in
  let baseline_file = ref "" in
  let update_baseline = ref false in
  let list_rules = ref false in
  let root = ref "" in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as JSON on stdout");
      ( "--baseline",
        Arg.Set_string baseline_file,
        "FILE subtract grandfathered findings recorded in FILE" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the --baseline file to cover the current findings" );
      ( "--root",
        Arg.Set_string root,
        "DIR chdir to DIR before scanning (paths are reported relative)" );
      ("--rules", Arg.Set list_rules, " print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Dsf_lint.Lint.rule) ->
        Printf.printf "%-18s %s\n%-18s   why: %s\n" r.id r.synopsis "" r.rationale)
      Dsf_lint.Lint.rules;
    exit 0
  end;
  if !root <> "" then Sys.chdir !root;
  let roots = match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps in
  let findings, errors = Dsf_lint.Lint.scan ~roots in
  if errors <> [] then begin
    List.iter (Printf.eprintf "lint: %s\n") errors;
    exit 2
  end;
  if !update_baseline then begin
    if !baseline_file = "" then begin
      prerr_endline "lint: --update-baseline requires --baseline FILE";
      exit 2
    end;
    Dsf_lint.Lint.Baseline.save !baseline_file findings;
    Printf.printf "lint: wrote %d baseline entr%s to %s\n"
      (List.length findings)
      (if List.length findings = 1 then "y" else "ies")
      !baseline_file;
    exit 0
  end;
  let entries =
    if !baseline_file = "" then [] else Dsf_lint.Lint.Baseline.load !baseline_file
  in
  let kept, suppressed, stale = Dsf_lint.Lint.Baseline.apply entries findings in
  if !json then print_endline (Dsf_lint.Finding.json_of_list kept)
  else begin
    List.iter
      (fun f -> Format.printf "@[<v>%a@]@." Dsf_lint.Finding.pp f)
      kept;
    List.iter
      (fun (e : Dsf_lint.Lint.Baseline.entry) ->
        Printf.printf
          "lint: stale baseline entry (no longer fires): %s [%s] %s\n"
          e.bfile e.brule e.bmessage)
      stale;
    if kept = [] then
      Printf.printf "lint: clean (%d file-scoped suppression%s via baseline)\n"
        suppressed
        (if suppressed = 1 then "" else "s")
    else
      Printf.printf "lint: %d finding%s (%d baselined)\n" (List.length kept)
        (if List.length kept = 1 then "" else "s")
        suppressed
  end;
  exit (if kept = [] then 0 else 1)
