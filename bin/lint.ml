(* dsf-lint driver: scan, subtract suppressions and the baseline, render.
   Exit 0 = clean, 1 = findings, 2 = a file failed to parse or read.
   Two passes share this driver: the default Parsetree scan over [.ml]
   sources, and [--typed], which runs the Typedtree rules over compiler
   [.cmt] artifacts (see lib/lint/typed_lint.mli).  Findings are always
   reported in Finding.compare order — (file, line, rule) — so text and
   --json output are stable across filesystem orderings.
   See the "Static analysis" section of HACKING.md for the rule
   catalogue and the suppression syntax. *)

let usage =
  "dsf-lint: repo-specific invariant checks (determinism, domain-safety, \
   CONGEST discipline)\n\
   usage: lint [options] [paths]   (default paths: lib bin bench)\n\
   \       lint --typed [paths]    (default path: _build/default/lib, \
   scanning .cmt artifacts)\n\
   options:"

let () =
  let json = ref false in
  let baseline_file = ref "" in
  let update_baseline = ref false in
  let list_rules = ref false in
  let typed = ref false in
  let root = ref "" in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as JSON on stdout");
      ( "--typed",
        Arg.Set typed,
        " run the Typedtree rules (domain-race, congest-width) over .cmt \
         artifacts instead of parsing sources" );
      ( "--baseline",
        Arg.Set_string baseline_file,
        "FILE subtract grandfathered findings recorded in FILE" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the --baseline file to cover the current findings" );
      ( "--root",
        Arg.Set_string root,
        "DIR chdir to DIR before scanning (paths are reported relative)" );
      ("--rules", Arg.Set list_rules, " print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    let print_rule (r : Dsf_lint.Lint.rule) =
      Printf.printf "%-22s %s\n%-22s   why: %s\n" r.id r.synopsis "" r.rationale
    in
    List.iter print_rule Dsf_lint.Lint.rules;
    print_endline "typed rules (lint --typed, over .cmt artifacts):";
    List.iter print_rule Dsf_lint.Typed_lint.rules;
    exit 0
  end;
  if !root <> "" then Sys.chdir !root;
  let findings, errors =
    if !typed then begin
      let roots =
        match List.rev !paths with
        | [] ->
            (* Inside dune's build context the library trees sit next to
               their .objs; from a source checkout, prefer the build dir. *)
            let d = Filename.concat "_build" "default" in
            let lib = Filename.concat d "lib" in
            [ (if Sys.file_exists lib then lib else "lib") ]
        | ps -> ps
      in
      Dsf_lint.Typed_lint.scan ~roots
    end
    else
      let roots =
        match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
      in
      Dsf_lint.Lint.scan ~roots
  in
  if errors <> [] then begin
    List.iter (Printf.eprintf "lint: %s\n") errors;
    exit 2
  end;
  if !update_baseline then begin
    if !baseline_file = "" then begin
      prerr_endline "lint: --update-baseline requires --baseline FILE";
      exit 2
    end;
    Dsf_lint.Lint.Baseline.save !baseline_file findings;
    Printf.printf "lint: wrote %d baseline entr%s to %s\n"
      (List.length findings)
      (if List.length findings = 1 then "y" else "ies")
      !baseline_file;
    exit 0
  end;
  let entries =
    if !baseline_file = "" then [] else Dsf_lint.Lint.Baseline.load !baseline_file
  in
  let kept, suppressed, stale = Dsf_lint.Lint.Baseline.apply entries findings in
  let kept = List.sort Dsf_lint.Finding.compare kept in
  if !json then print_endline (Dsf_lint.Finding.json_of_list kept)
  else begin
    List.iter
      (fun f -> Format.printf "@[<v>%a@]@." Dsf_lint.Finding.pp f)
      kept;
    List.iter
      (fun (e : Dsf_lint.Lint.Baseline.entry) ->
        Printf.printf
          "lint: stale baseline entry (no longer fires): %s [%s] %s\n"
          e.bfile e.brule e.bmessage)
      stale;
    if kept = [] then
      Printf.printf "lint: clean (%d file-scoped suppression%s via baseline)\n"
        suppressed
        (if suppressed = 1 then "" else "s")
    else
      Printf.printf "lint: %d finding%s (%d baselined)\n" (List.length kept)
        (if List.length kept = 1 then "" else "s")
        suppressed
  end;
  exit (if kept = [] then 0 else 1)
