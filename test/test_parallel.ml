(* The multicore trial engine: Dsf_util.Pool unit tests, and the
   jobs-invariance contract — running a trial fan-out on N domains must
   be bit-identical to running it on one (same solutions, weights and
   ledgers).  See the domain-safety contract in lib/congest/sim.mli. *)

open Dsf_graph
open Dsf_core
module Pool = Dsf_util.Pool
module Ledger = Dsf_congest.Ledger

let check = Alcotest.check

let random_instance ?(n = 24) ?(extra = 18) ?(max_w = 8) ?(t = 8) ?(k = 3) seed =
  let r = Dsf_util.Rng.create seed in
  let g = Gen.random_connected r ~n ~extra_edges:extra ~max_w in
  let labels = Gen.random_labels r ~n ~t ~k in
  Instance.make_ic g labels

(* ------------------------------------------------------------------- Pool *)

let test_pool_ordering () =
  let input = Array.init 257 (fun i -> i) in
  let expected = Array.map (fun i -> (i * i) + 1) input in
  List.iter
    (fun jobs ->
      let got = Pool.map_chunked ~jobs (fun i -> (i * i) + 1) input in
      check
        Alcotest.(array int)
        (Printf.sprintf "ordered at jobs=%d" jobs)
        expected got)
    [ 1; 2; 3; 4; Pool.hard_cap; Pool.hard_cap + 5 ]

let test_pool_empty_and_singleton () =
  check Alcotest.(array int) "empty" [||]
    (Pool.map_chunked ~jobs:4 (fun i -> i) [||]);
  check Alcotest.(array int) "singleton" [| 7 |]
    (Pool.map_chunked ~jobs:4 (fun i -> i + 1) [| 6 |])

exception Boom of int

let test_pool_exception_propagation () =
  (* The smallest failing index wins, regardless of which domain hits its
     failure first. *)
  match
    Pool.map_chunked ~jobs:4
      (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
      (Array.init 64 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> check Alcotest.int "smallest failing index" 2 i

let test_pool_nested_use_rejected () =
  (* A parallel region inside a parallel region must raise Nested_use (the
     pool is a process-global resource), and the outer batch must still
     fail cleanly rather than deadlock. *)
  match
    Pool.map_chunked ~jobs:2
      (fun i ->
        if i = 0 then
          Array.length (Pool.map_chunked ~jobs:2 (fun j -> j) [| 0; 1; 2 |])
        else i)
      [| 0; 1; 2; 3 |]
  with
  | _ -> Alcotest.fail "expected Nested_use"
  | exception Pool.Nested_use -> ()

let test_pool_nested_sequential_ok () =
  (* jobs=1 short-circuits to Array.map, so sequential use inside a
     parallel task is allowed — Rand_dsf's default path relies on it. *)
  let got =
    Pool.map_chunked ~jobs:2
      (fun i ->
        Array.fold_left ( + ) 0
          (Pool.map_chunked ~jobs:1 (fun j -> i + j) [| 1; 2; 3 |]))
      [| 0; 10 |]
  in
  check Alcotest.(array int) "nested jobs=1" [| 6; 36 |] got

let test_pool_reusable_after_exception () =
  (try ignore (Pool.map_chunked ~jobs:3 (fun _ -> raise Exit) [| 1; 2; 3 |])
   with Exit -> ());
  let got = Pool.map_chunked ~jobs:3 (fun i -> 2 * i) [| 1; 2; 3 |] in
  check Alcotest.(array int) "pool survives a failed batch" [| 2; 4; 6 |] got

let test_pool_survives_failing_batches () =
  (* Repeated failing batches at full parallelism: a chunk that raises on
     a worker domain must neither wedge the caller on the batch condvar
     nor kill the worker (a dead worker would silently shrink the pool
     because the spawn count never decays).  Each failing batch is
     followed by a clean one that must still come back complete and
     correctly ordered. *)
  let input = Array.init 32 Fun.id in
  for round = 1 to 5 do
    (match
       Pool.map_chunked ~jobs:Pool.hard_cap
         (fun i -> if i mod 2 = 0 then raise (Boom i) else i)
         input
     with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom i -> check Alcotest.int "smallest failing index" 0 i);
    let got = Pool.map_chunked ~jobs:Pool.hard_cap (fun i -> i + round) input in
    check
      Alcotest.(array int)
      (Printf.sprintf "clean batch after failures, round %d" round)
      (Array.map (fun i -> i + round) input)
      got
  done

let test_pool_default_jobs_bounds () =
  let d = Pool.default_jobs () in
  Alcotest.(check bool) "within [1, hard_cap]" true (1 <= d && d <= Pool.hard_cap)

(* -------------------------------------------------------- jobs invariance *)

let ledger_repr l =
  List.map
    (fun (kind, label, rounds) ->
      (match kind with Ledger.Simulated -> "S" | Ledger.Charged -> "C")
      ^ ":" ^ label ^ ":" ^ string_of_int rounds)
    (Ledger.entries l)

let rand_invariance seed ~repetitions ~force_truncate =
  let inst = random_instance seed in
  let runs =
    List.map
      (fun jobs ->
        Rand_dsf.run ~repetitions ~force_truncate ~jobs
          ~rng:(Dsf_util.Rng.create (seed * 7))
          inst)
      [ 1; 4 ]
  in
  match runs with
  | [ a; b ] ->
      check Alcotest.int "weight" a.Rand_dsf.weight b.Rand_dsf.weight;
      check
        Alcotest.(array bool)
        "solution" a.Rand_dsf.solution b.Rand_dsf.solution;
      check Alcotest.int "phases" a.Rand_dsf.phases b.Rand_dsf.phases;
      check
        Alcotest.(list string)
        "ledger" (ledger_repr a.Rand_dsf.ledger)
        (ledger_repr b.Rand_dsf.ledger)
  | _ -> assert false

let test_rand_jobs_invariant () =
  List.iter (fun seed -> rand_invariance seed ~repetitions:5 ~force_truncate:false)
    [ 3; 11; 42 ]

let test_rand_jobs_invariant_truncated () =
  rand_invariance 5 ~repetitions:4 ~force_truncate:true

let test_solver_jobs_invariant () =
  let inst = random_instance 23 in
  let algo = Solver.Rand { repetitions = 4; seed = 9 } in
  let a = Solver.solve_ic ~jobs:1 algo inst in
  let b = Solver.solve_ic ~jobs:4 algo inst in
  check Alcotest.int "weight" a.Solver.weight b.Solver.weight;
  check Alcotest.(array bool) "solution" a.Solver.solution b.Solver.solution;
  check Alcotest.int "rounds_simulated" a.Solver.rounds_simulated
    b.Solver.rounds_simulated;
  check Alcotest.int "rounds_charged" a.Solver.rounds_charged
    b.Solver.rounds_charged

let test_det_via_pool_matches_sequential () =
  (* Deterministic solvers mapped over instances through the pool must
     match the plain sequential map — the harness-level fan-out used by the
     bench sweeps (E1/E14/A2). *)
  let seeds = Array.init 6 (fun i -> 100 + i) in
  let solve seed =
    let inst = random_instance seed in
    let r = Det_dsf.run inst in
    (r.Det_dsf.weight, Ledger.total r.Det_dsf.ledger)
  in
  let seq = Array.map solve seeds in
  let par = Pool.map_chunked ~jobs:4 solve seeds in
  check
    Alcotest.(array (pair int int))
    "det_dsf pooled = sequential" seq par

let test_det_sublinear_via_pool_matches_sequential () =
  let seeds = Array.init 4 (fun i -> 200 + i) in
  let solve seed =
    let inst = random_instance seed in
    let r = Det_sublinear.run ~eps_num:1 ~eps_den:2 inst in
    (r.Det_sublinear.weight, Ledger.total r.Det_sublinear.ledger)
  in
  let seq = Array.map solve seeds in
  let par = Pool.map_chunked ~jobs:4 solve seeds in
  check
    Alcotest.(array (pair int int))
    "det_sublinear pooled = sequential" seq par

let suites =
  [
    ( "pool",
      [
        Alcotest.test_case "deterministic ordering" `Quick test_pool_ordering;
        Alcotest.test_case "empty and singleton" `Quick
          test_pool_empty_and_singleton;
        Alcotest.test_case "exception propagation" `Quick
          test_pool_exception_propagation;
        Alcotest.test_case "nested use rejected" `Quick
          test_pool_nested_use_rejected;
        Alcotest.test_case "nested jobs=1 allowed" `Quick
          test_pool_nested_sequential_ok;
        Alcotest.test_case "reusable after exception" `Quick
          test_pool_reusable_after_exception;
        Alcotest.test_case "survives failing batches" `Quick
          test_pool_survives_failing_batches;
        Alcotest.test_case "default_jobs bounds" `Quick
          test_pool_default_jobs_bounds;
      ] );
    ( "jobs invariance",
      [
        Alcotest.test_case "rand_dsf jobs=1 vs jobs=4" `Quick
          test_rand_jobs_invariant;
        Alcotest.test_case "rand_dsf truncated regime" `Quick
          test_rand_jobs_invariant_truncated;
        Alcotest.test_case "solver ?jobs" `Quick test_solver_jobs_invariant;
        Alcotest.test_case "det_dsf pooled sweep" `Quick
          test_det_via_pool_matches_sequential;
        Alcotest.test_case "det_sublinear pooled sweep" `Quick
          test_det_sublinear_via_pool_matches_sequential;
      ] );
  ]
