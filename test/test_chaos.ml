(* Chaos differential suite: the Fault.harden combinator must make any
   maskable fault plan invisible — a hardened protocol on a lossy network
   reaches exactly the final states the raw protocol reaches on a lossless
   one.  With a [Fault.recoverable] contract that extends to
   crash-and-restart: a restarted node resumes from its checkpoint, so a
   crash window degrades into a finite outage the reliable layer rides
   out.  Also pins down what the RAW protocols do (and do not) guarantee
   under crash-and-restart plans, that an end-to-end det_dsf solve under a
   full chaos plan is bit-identical to the fault-free run (both engines,
   jobs 1 and 4), and that round-limit aborts carry a usable
   post-mortem. *)

open Dsf_graph
open Dsf_congest

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

(* Hardened runs multiply round counts by the synchronizer overhead, so
   chaos graphs stay small. *)
let random_graph seed =
  let r = rng seed in
  let n = 6 + Dsf_util.Rng.int r 10 in
  let extra = Dsf_util.Rng.int r n in
  let max_w = 1 + Dsf_util.Rng.int r 8 in
  Gen.random_connected r ~n ~extra_edges:extra ~max_w

let random_drop_plan seed =
  let r = rng (seed lxor 0x5bd1e995) in
  (* drop in [0, 0.45], duplicate in [0, 0.3]: lossy enough to force
     retransmissions, tame enough to converge quickly. *)
  let drop = float_of_int (Dsf_util.Rng.int r 46) /. 100. in
  let duplicate = float_of_int (Dsf_util.Rng.int r 31) /. 100. in
  Fault.plan ~drop ~duplicate ~seed:(Dsf_util.Rng.int r 1_000_000) ()

(* Raw lossless final states vs hardened final states under [plan]. *)
let masks_plan ?max_rounds g proto plan =
  let lossless, _ = Sim.run g proto in
  let hardened, _ = Fault.run_hardened ?max_rounds ~plan g proto in
  lossless = hardened

let prop_harden_bfs =
  QCheck.Test.make ~name:"harden masks drops (BFS)" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let root = seed mod Graph.n g in
      (* BFS parent choice is first-arrival — the synchronizer must
         reproduce the exact lossless timing, not just any BFS tree. *)
      masks_plan g (Bfs.protocol ~root) (random_drop_plan seed))

let prop_harden_bellman_ford =
  QCheck.Test.make ~name:"harden masks drops (Bellman-Ford)" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let r = rng (seed + 1) in
      let k = 1 + Dsf_util.Rng.int r 3 in
      let sources =
        List.init k (fun _ -> Dsf_util.Rng.int r n, Dsf_util.Rng.int r 4)
      in
      masks_plan g (Bellman_ford.protocol g ~sources) (random_drop_plan seed))

let prop_harden_exchange_leader =
  QCheck.Test.make ~name:"harden masks drops (exchange / leader)" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let plan = random_drop_plan (seed + 7) in
      masks_plan g (Exchange.protocol ~payload_bits:9) plan
      && masks_plan g (Leader.protocol g) plan)

let prop_harden_faultfree_identity =
  QCheck.Test.make ~name:"hardened fault-free run = lossless states"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let root = seed mod Graph.n g in
      let lossless, _ = Sim.run g (Bfs.protocol ~root) in
      let hardened, stats = Fault.run_hardened g (Bfs.protocol ~root) in
      lossless = hardened && stats.Sim.retransmissions = 0
      && stats.Sim.dropped = 0)

let prop_drops_cost_retransmissions =
  QCheck.Test.make ~name:"dropped payloads force retransmissions" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let plan = Fault.plan ~drop:0.3 ~seed () in
      let _, stats =
        Fault.run_hardened ~plan g (Leader.protocol g)
      in
      (* Some packet of the chatty leader flood is dropped with
         overwhelming probability at p = 0.3; each drop must eventually be
         covered by a resend. *)
      stats.Sim.dropped = 0 || stats.Sim.retransmissions > 0)

(* ------------------------------------------------ raw protocols + crashes *)

let test_exchange_crash_restart () =
  (* The raw exchange is self-stabilizing under crash-and-restart: a
     restarted node re-inits to "not sent" and simply re-sends.  Node [v]
     sleeps through rounds 0-1 and wakes at round 2; its neighbors' mail
     dies at its door, but every node still ends having sent exactly its
     own outbox once. *)
  let g = random_graph 4242 in
  let n = Graph.n g in
  let m = Graph.m g in
  let v = n / 2 in
  let plan = Fault.plan ~crashes:[ v, 0, 2 ] ~seed:1 () in
  let states, stats =
    Sim.run ~faults:(Fault.instantiate plan) g
      (Exchange.protocol ~payload_bits:9)
  in
  Array.iteri
    (fun u sent ->
      Alcotest.(check bool) (Printf.sprintf "node %d sent" u) true sent)
    states;
  check Alcotest.int "messages = 2m (every outbox fired exactly once)"
    (2 * m) stats.Sim.messages;
  check Alcotest.int "dropped = deg v (mail at the crashed door)"
    (Array.length (Graph.adj g v))
    stats.Sim.dropped

let test_leader_crash_breaks_agreement () =
  (* A node that sleeps through the max-id wave quiesces on a stale
     leader: on the path 0-1-...-k, node 0 goes down exactly when the
     wave of k arrives (rounds k-1 and k) and the network settles before
     its scheduled restart.  The raw protocol does NOT mask this;
     [agreed] must surface the disagreement and [leader] must still
     report the true winner. *)
  let k = 8 in
  let g = Gen.path (k + 1) in
  let plan = Fault.plan ~crashes:[ 0, k - 1, k + 2 ] ~seed:1 () in
  let res = Leader.elect ~faults:(Fault.instantiate plan) g in
  Alcotest.(check bool) "disagreement surfaced" false res.Leader.agreed;
  check Alcotest.int "true winner still reported" k res.Leader.leader

let test_leader_max_node_restart_reconverges () =
  (* Crashing the max-id node early is healed by the restart: it re-inits
     to its own id and re-floods, and its pre-crash wave already seeded
     the rest of the network. *)
  let k = 8 in
  let g = Gen.path (k + 1) in
  let plan = Fault.plan ~crashes:[ k, 1, 3 ] ~seed:1 () in
  let res = Leader.elect ~faults:(Fault.instantiate plan) g in
  Alcotest.(check bool) "agreement restored" true res.Leader.agreed;
  check Alcotest.int "leader" k res.Leader.leader

(* ------------------------------------------- crash recovery (checkpoints) *)

let test_maskable_classifier () =
  let drops = Fault.plan ~drop:0.2 ~duplicate:0.1 ~seed:1 () in
  let outage = Fault.plan ~link_down:[ 0, 1, 2, 5 ] ~seed:1 () in
  let crash = Fault.plan ~crashes:[ 0, 2, 4 ] ~seed:1 () in
  Alcotest.(check bool) "drops maskable" true (Fault.maskable drops);
  Alcotest.(check bool) "drops maskable without recovery" true
    (Fault.maskable ~with_recovery:false drops);
  (* [maskable] is strictly wider than the deprecated [drop_only] (whose
     remaining uses the deprecated-fault-alias lint rule now flags):
     finite outages are healed by capped-backoff retransmission alone,
     no recovery contract needed. *)
  Alcotest.(check bool) "outage maskable" true (Fault.maskable outage);
  Alcotest.(check bool) "outage maskable without recovery" true
    (Fault.maskable ~with_recovery:false outage);
  Alcotest.(check bool) "crash needs recovery" false (Fault.maskable crash);
  Alcotest.(check bool) "crash maskable with recovery" true
    (Fault.maskable ~with_recovery:true crash);
  Alcotest.(check bool) "chaos_plan maskable with recovery" true
    (Fault.maskable ~with_recovery:true
       (Fault.chaos_plan ~seed:3 (random_graph 3)))

let prop_recovery_masks_chaos_plans =
  (* The tentpole guarantee: a full chaos_plan — drops, duplications,
     finite link outages AND crash-restart windows — is invisible to a
     protocol hardened with a recoverable contract. *)
  QCheck.Test.make ~name:"recovery masks chaos plans (BFS / leader)"
    ~count:12
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let plan = Fault.chaos_plan ~seed g in
      let root = seed mod Graph.n g in
      let masks proto =
        let lossless, _ = Sim.run g proto in
        let hardened, _ =
          Fault.run_hardened ~plan ~recovery:(Fault.immutable ()) g proto
        in
        lossless = hardened
      in
      masks (Bfs.protocol ~root) && masks (Leader.protocol g))

let test_leader_crash_recovery_reconverges () =
  (* The exact adversarial schedule that breaks the raw protocol above
     (node 0 sleeps through the max-id wave) is fully masked once the run
     is hardened with recovery: node 0 restarts from its checkpoint and
     the go-back-N machinery replays what the crash ate. *)
  let k = 8 in
  let g = Gen.path (k + 1) in
  let plan = Fault.plan ~crashes:[ 0, k - 1, k + 2 ] ~seed:1 () in
  let lossless, _ = Sim.run g (Leader.protocol g) in
  let hardened, _ =
    Fault.run_hardened ~plan ~recovery:(Fault.immutable ()) g
      (Leader.protocol g)
  in
  Alcotest.(check bool) "crash masked by recovery" true (lossless = hardened);
  (* Same guarantee through the chaos front door: [Leader.elect ?chaos]
     runs hardened-with-recovery and asserts agreement internally. *)
  let res =
    Leader.elect ~chaos:(Fault.chaos (Fault.chaos_plan ~seed:7 g)) g
  in
  Alcotest.(check bool) "elect under chaos agrees" true res.Leader.agreed;
  check Alcotest.int "elect under chaos: true winner" k res.Leader.leader

let test_recovery_stats_counted () =
  (* Recovery work is observable: a crash window inside the run must show
     up as a restore, resync rounds, and checkpoint bits — and the inner
     states must still be the lossless ones. *)
  let k = 8 in
  let g = Gen.path (k + 1) in
  let plan = Fault.plan ~crashes:[ 0, 4, 7 ] ~seed:1 () in
  let proto = Leader.protocol g in
  let hardened = Fault.harden ~recovery:(Fault.immutable ()) proto in
  let hs, _ =
    Sim.run ~halt:(Fault.quiescent proto) ~faults:(Fault.instantiate plan) g
      hardened
  in
  let rs = Fault.recovery_of hs in
  check Alcotest.int "one restore" 1 rs.Fault.restores;
  Alcotest.(check bool) "resync rounds counted" true (rs.Fault.recovery_rounds > 0);
  Alcotest.(check bool) "checkpoint bits counted" true
    (rs.Fault.checkpoint_bits > 0);
  let lossless, _ = Sim.run g proto in
  Alcotest.(check bool) "inner states lossless" true
    (Array.map Fault.inner hs = lossless)

let test_exchange_chaos_still_stabilizes () =
  (* The raw exchange's self-stabilization (test above) is not disturbed
     by the hardened path: under a full chaos plan every node still ends
     having sent, and the stats come back finite. *)
  let g = random_graph 777 in
  let stats =
    Exchange.all_neighbors ~chaos:(Fault.chaos (Fault.chaos_plan ~seed:9 g))
      g ~payload_bits:9
  in
  Alcotest.(check bool) "positive traffic" true (stats.Sim.messages > 0)

(* ------------------------------------------- end-to-end det_dsf chaos *)

let test_det_dsf_chaos_differential () =
  (* The acceptance bullet: a complete det_dsf solve under a seeded
     maskable chaos plan (drops + duplicates + finite link-down +
     crash-restart-with-recovery) is bit-identical to the fault-free
     solve — solution, weight, dual, merge schedule, phase count — on the
     classic engine and on the flat engine at jobs 1 and 4.  Ledger round
     counts legitimately differ (the synchronizer pays for the faults), so
     they are excluded from the comparison. *)
  let r = rng 2024 in
  let g = Gen.random_connected r ~n:26 ~extra_edges:18 ~max_w:10 in
  let labels = Gen.spread_labels r g ~t:8 ~k:3 in
  let inst = Instance.make_ic g labels in
  let base = Dsf_core.Det_dsf.run inst in
  let chaos = Fault.chaos (Fault.chaos_plan ~seed:5 g) in
  List.iter
    (fun (label, flat, jobs) ->
      let c = Dsf_core.Det_dsf.run ~flat ~jobs ~chaos inst in
      Alcotest.(check bool)
        (label ^ ": solution identical")
        true
        (c.Dsf_core.Det_dsf.solution = base.Dsf_core.Det_dsf.solution);
      check Alcotest.int (label ^ ": weight") base.Dsf_core.Det_dsf.weight
        c.Dsf_core.Det_dsf.weight;
      Alcotest.(check bool)
        (label ^ ": dual identical")
        true
        (Dsf_core.Frac.compare c.Dsf_core.Det_dsf.dual
           base.Dsf_core.Det_dsf.dual
        = 0);
      Alcotest.(check bool)
        (label ^ ": merge schedule identical")
        true
        (c.Dsf_core.Det_dsf.merges = base.Dsf_core.Det_dsf.merges);
      check Alcotest.int
        (label ^ ": phase count")
        base.Dsf_core.Det_dsf.phase_count c.Dsf_core.Det_dsf.phase_count)
    [ "classic", false, 1; "flat j1", true, 1; "flat j4", true, 4 ]

(* ----------------------------------------------------------- post-mortem *)

let test_crash_plan_not_masked_postmortem () =
  (* Hardening does NOT mask crash plans: a permanently dead neighbor eats
     payloads forever, the sender retransmits forever, and the run must
     abort with a structured, printable post-mortem. *)
  let g = Gen.path 4 in
  let plan = Fault.plan ~crashes:[ 0, 2, 1_000_000 ] ~seed:1 () in
  let max_rounds = 60 in
  (* Clamp the backoff so a retransmission lands inside the 8-round
     post-mortem window (the default cap of 32 can out-wait it). *)
  match
    Fault.run_hardened ~max_rounds ~rto:3 ~rto_cap:4 ~plan g
      (Leader.protocol g)
  with
  | _ -> Alcotest.fail "expected Round_limit"
  | exception Sim.Round_limit a ->
      check Alcotest.int "aborted at the limit" max_rounds a.Sim.at_round;
      check Alcotest.int "snapshot rounds" max_rounds a.Sim.snapshot.Sim.rounds;
      Alcotest.(check bool) "ring buffer non-empty" true (a.Sim.recent <> []);
      Alcotest.(check bool) "window bounded" true
        (List.length a.Sim.recent <= Sim.postmortem_window);
      (* The retransmit timers were still firing when the axe fell. *)
      Alcotest.(check bool) "someone was still talking" true
        (List.exists (fun (_, msgs) -> msgs <> []) a.Sim.recent);
      let rendered = Format.asprintf "%a" Sim.pp_abort a in
      Alcotest.(check bool) "printable post-mortem" true
        (String.length rendered > 0);
      let via_printexc = Printexc.to_string (Sim.Round_limit a) in
      Alcotest.(check bool) "registered exception printer" true
        (String.length via_printexc > String.length "Sim.Round_limit");
      (* The full Trace dump adds per-sender totals and the raw
         round-by-round traffic on top of the compact summary. *)
      let dump = Format.asprintf "%a" (Trace.pp_postmortem ?recorder:None) a in
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "full dump has the header" true
        (contains dump "round limit hit at round 60");
      Alcotest.(check bool) "full dump ranks senders" true
        (contains dump "senders over the last")

let suites =
  [
    ( "congest.chaos",
      [
        qtest prop_harden_bfs;
        qtest prop_harden_bellman_ford;
        qtest prop_harden_exchange_leader;
        qtest prop_harden_faultfree_identity;
        qtest prop_drops_cost_retransmissions;
        Alcotest.test_case "exchange under crash-restart" `Quick
          test_exchange_crash_restart;
        Alcotest.test_case "leader: crash breaks agreement" `Quick
          test_leader_crash_breaks_agreement;
        Alcotest.test_case "leader: max-node restart reconverges" `Quick
          test_leader_max_node_restart_reconverges;
        Alcotest.test_case "maskable classifier" `Quick
          test_maskable_classifier;
        qtest prop_recovery_masks_chaos_plans;
        Alcotest.test_case "leader: crash masked by recovery" `Quick
          test_leader_crash_recovery_reconverges;
        Alcotest.test_case "recovery work is counted" `Quick
          test_recovery_stats_counted;
        Alcotest.test_case "exchange under chaos still stabilizes" `Quick
          test_exchange_chaos_still_stabilizes;
        Alcotest.test_case "det_dsf chaos differential (engines, jobs)"
          `Slow test_det_dsf_chaos_differential;
        Alcotest.test_case "crash plan aborts with post-mortem" `Quick
          test_crash_plan_not_masked_postmortem;
      ] );
  ]
