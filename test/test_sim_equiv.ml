(* Differential tests for the active-set simulator: Sim.run (skip idle
   nodes, flat-array accounting, incremental done-count) must be
   observationally identical to Sim.run_reference (the seed loop that steps
   every node every round) — same stats, same final states, same results —
   on randomized graphs and the protocols that declare sparse wake-ups. *)

open Dsf_graph
open Dsf_congest

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

let with_reference f =
  Sim.use_reference_engine := true;
  Fun.protect ~finally:(fun () -> Sim.use_reference_engine := false) f

(* Run the same closure through both engines and hand back both results.
   The closure must be deterministic (all our protocols are). *)
let both f = f (), with_reference f

let stats_eq (a : Sim.stats) (b : Sim.stats) = a = b

let random_graph seed =
  let r = rng seed in
  let n = 8 + Dsf_util.Rng.int r 20 in
  let extra = Dsf_util.Rng.int r (2 * n) in
  let max_w = 1 + Dsf_util.Rng.int r 12 in
  Gen.random_connected r ~n ~extra_edges:extra ~max_w

(* ------------------------------------------------------------- raw protos *)

(* The unit-suite flood protocol, with a sparse wake: exercises run vs
   run_reference directly (not through the engine flag). *)
type flood_state = { heard : int option; relayed : bool }

let flood_protocol root : (flood_state, unit) Sim.protocol =
  {
    init =
      (fun view ->
        if view.Sim.node = root then { heard = Some 0; relayed = false }
        else { heard = None; relayed = false });
    step =
      (fun view ~round st ~inbox ->
        let st =
          match st.heard, inbox with
          | None, _ :: _ -> { st with heard = Some round }
          | _ -> st
        in
        if st.heard <> None && not st.relayed then
          ( { st with relayed = true },
            Array.to_list view.Sim.nbrs |> List.map (fun (nb, _, _) -> nb, ()) )
        else st, []);
    is_done = (fun st -> st.heard <> None && st.relayed);
    msg_bits = (fun () -> 1);
    wake = Some Sim.never;
  }

let prop_flood_equiv =
  QCheck.Test.make ~name:"run = run_reference (flood, sparse wake)" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let root = seed mod Graph.n g in
      let s1, t1 = Sim.run g (flood_protocol root) in
      let s2, t2 = Sim.run_reference g (flood_protocol root) in
      s1 = s2 && stats_eq t1 t2)

(* ------------------------------------------------- library entry points *)

let prop_bellman_ford_equiv =
  QCheck.Test.make ~name:"run = run_reference (Bellman-Ford Voronoi)"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let r = rng (seed + 1) in
      let k = 1 + Dsf_util.Rng.int r 3 in
      let sources =
        List.init k (fun _ ->
            Dsf_util.Rng.int r n, Dsf_util.Rng.int r 5)
      in
      let (res1, t1), (res2, t2) =
        both (fun () -> Bellman_ford.run g ~sources)
      in
      res1 = res2 && stats_eq t1 t2)

let prop_pipeline_equiv =
  QCheck.Test.make
    ~name:"run = run_reference (pipelined filtered upcast)" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let r = rng (seed + 2) in
      let tree = fst (Bfs.build g ~root:(Dsf_util.Rng.int r n)) in
      let vn = 10 in
      let items_all =
        List.init 20 (fun i ->
            let a = Dsf_util.Rng.int r vn and b = Dsf_util.Rng.int r vn in
            if a = b then None
            else Some (Dsf_util.Rng.int r n, { Pipeline.key = i; a; b }))
        |> List.filter_map Fun.id
      in
      let items v =
        List.filter (fun (h, _) -> h = v) items_all |> List.map snd
      in
      let (acc1, t1), (acc2, t2) =
        both (fun () ->
            Pipeline.filtered_upcast g ~tree ~vn ~pre:[] ~items ~cmp:compare
              ~bits:(fun _ -> 16))
      in
      acc1 = acc2 && stats_eq t1 t2)

let prop_tree_ops_equiv =
  QCheck.Test.make
    ~name:"run = run_reference (upcast / broadcast / aggregate)" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let tree = fst (Bfs.build g ~root:(seed mod n)) in
      let bits x = Dsf_util.Bitsize.int_bits (max 1 x) in
      let (up1, ut1), (up2, ut2) =
        both (fun () ->
            Tree_ops.upcast g ~tree ~items:(fun v -> [ v; v + n ]) ~bits)
      in
      let (bc1, bt1), (bc2, bt2) =
        both (fun () ->
            Tree_ops.broadcast g ~tree ~items:[ 1; 2; 3 ] ~bits)
      in
      let (ag1, at1), (ag2, at2) =
        both (fun () ->
            Tree_ops.aggregate g ~tree ~value:Fun.id ~combine:( + ) ~bits)
      in
      up1 = up2 && stats_eq ut1 ut2
      && bc1 = bc2 && stats_eq bt1 bt2
      && ag1 = ag2 && stats_eq at1 at2)

let prop_bfs_leader_exchange_equiv =
  QCheck.Test.make
    ~name:"run = run_reference (BFS / leader / exchange)" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let (tr1, bt1), (tr2, bt2) =
        both (fun () -> Bfs.build g ~root:(seed mod Graph.n g))
      in
      let le1, le2 = both (fun () -> Leader.elect g) in
      let ex1, ex2 =
        both (fun () -> Exchange.all_neighbors g ~payload_bits:9)
      in
      tr1 = tr2 && stats_eq bt1 bt2 && le1 = le2 && stats_eq ex1 ex2)

let prop_telemetry_transparent =
  QCheck.Test.make
    ~name:"?telemetry never perturbs a run (both engines)" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let root = seed mod Graph.n g in
      (* The hook only observes: states, stats and observer traces of an
         instrumented run must be bit-identical to the bare run — on the
         active-set engine and the reference loop alike. *)
      let record_active telemetry =
        let log = ref [] in
        let observer ~src ~dst ~bits = log := (src, dst, bits) :: !log in
        let s, t = Sim.run ~observer ?telemetry g (flood_protocol root) in
        s, t, List.rev !log
      in
      let record_reference telemetry =
        let log = ref [] in
        let observer ~src ~dst ~bits = log := (src, dst, bits) :: !log in
        let s, t =
          Sim.run_reference ~observer ?telemetry g (flood_protocol root)
        in
        s, t, List.rev !log
      in
      let tel () = Some (Telemetry.create ~clock:(fun () -> 0L) ()) in
      record_active None = record_active (tel ())
      && record_reference None = record_reference (tel ()))

let prop_empty_plan_identity =
  QCheck.Test.make
    ~name:"?faults with the empty plan is bit-identical" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let root = seed mod Graph.n g in
      (* States, stats AND observer traces must all coincide: an empty
         plan never fires, so the fault-injecting engine path has to be
         indistinguishable from the fault-free one. *)
      let record faults =
        let log = ref [] in
        let observer ~src ~dst ~bits = log := (src, dst, bits) :: !log in
        let s, t = Sim.run ~observer ?faults g (flood_protocol root) in
        s, t, List.rev !log
      in
      record None = record (Some (Fault.instantiate Fault.empty)))

(* --------------------------------------------------------------- corners *)

let test_single_node () =
  let g = Graph.make ~n:1 [] in
  let (s1, t1), (s2, t2) = both (fun () -> Sim.run g (flood_protocol 0)) in
  ignore s1;
  ignore s2;
  check Alcotest.int "rounds" t2.Sim.rounds t1.Sim.rounds;
  Alcotest.(check bool) "stats equal" true (stats_eq t1 t2)

let test_round_limit_equiv () =
  (* Both engines must hit Round_limit at the same round on a protocol that
     never quiesces. *)
  let g = Gen.path 3 in
  let chatty : (unit, unit) Sim.protocol =
    {
      init = (fun _ -> ());
      step =
        (fun view ~round:_ st ~inbox:_ ->
          st, Array.to_list view.Sim.nbrs |> List.map (fun (nb, _, _) -> nb, ()));
      is_done = (fun () -> true);
      msg_bits = (fun () -> 1);
      wake = None;
    }
  in
  let limit_of run =
    match run () with
    | exception Sim.Round_limit a -> a.Sim.at_round
    | _ -> -1
  in
  let active = limit_of (fun () -> Sim.run ~max_rounds:7 g chatty) in
  let reference =
    limit_of (fun () -> Sim.run_reference ~max_rounds:7 g chatty)
  in
  check Alcotest.int "same limit" reference active;
  check Alcotest.int "limit is 7" 7 active

let test_halt_equiv () =
  let g = Gen.path 4 in
  let counting : (int, unit) Sim.protocol =
    {
      init = (fun _ -> 0);
      step =
        (fun view ~round:_ c ~inbox:_ ->
          ( c + 1,
            Array.to_list view.Sim.nbrs |> List.map (fun (nb, _, _) -> nb, ()) ));
      is_done = (fun _ -> false);
      msg_bits = (fun () -> 1);
      wake = None;
    }
  in
  let halt sts = sts.(0) >= 4 in
  let (s1, t1), (s2, t2) = both (fun () -> Sim.run ~halt g counting) in
  check Alcotest.(array int) "states" s2 s1;
  Alcotest.(check bool) "stats equal" true (stats_eq t1 t2)

let test_scheduler_skips_idle () =
  (* A protocol that is done from the start and never sends: with a sparse
     wake the active-set engine must not step anyone (states stay at init),
     while the reference engine steps everyone once.  Stats agree anyway —
     this is exactly the contract boundary the [wake] docs describe. *)
  let g = Gen.grid ~rows:3 ~cols:3 in
  let lazybones : (int, unit) Sim.protocol =
    {
      init = (fun _ -> 0);
      step = (fun _ ~round:_ c ~inbox:_ -> c + 1, []);
      is_done = (fun _ -> true);
      msg_bits = (fun () -> 1);
      wake = Some Sim.never;
    }
  in
  let s_active, t_active = Sim.run g lazybones in
  let s_ref, t_ref = Sim.run_reference g lazybones in
  Array.iter (fun c -> check Alcotest.int "never stepped" 0 c) s_active;
  Array.iter (fun c -> check Alcotest.int "stepped once" 1 c) s_ref;
  Alcotest.(check bool) "stats still equal" true (stats_eq t_active t_ref)

let test_observer_order_identical () =
  (* The observer must see the same (src, dst, bits) sequence from both
     engines — traces and cut meters rely on it. *)
  let g = random_graph 424_242 in
  let record f =
    let log = ref [] in
    Sim.with_observer
      (fun ~src ~dst ~bits -> log := (src, dst, bits) :: !log)
      (fun () -> ignore (f ()));
    List.rev !log
  in
  let l1 = record (fun () -> Bellman_ford.sssp g ~src:0) in
  let l2 =
    record (fun () -> with_reference (fun () -> Bellman_ford.sssp g ~src:0))
  in
  check Alcotest.int "same length" (List.length l2) (List.length l1);
  Alcotest.(check bool) "same sequence" true (l1 = l2)

(* ------------------------------------------------------------ flat engine *)

(* Capture a run as a comparable value: states, stats and the observer
   trace on success, the full abort post-mortem on Round_limit (both
   sides of a differential must stall identically too). *)
let capture run g proto =
  let log = ref [] in
  let observer ~src ~dst ~bits = log := (src, dst, bits) :: !log in
  let outcome =
    match run ~observer g proto with
    | s, t -> Ok (s, t)
    | exception Sim.Round_limit a -> Error a
  in
  outcome, List.rev !log

let prop_flat_equiv_faults_telemetry =
  QCheck.Test.make
    ~name:"flat = active (faults + telemetry on, incl. stalls)" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let root = seed mod n in
      (* Drops can strand the flood forever (it never retransmits), so a
         stall is an expected outcome here: both engines must then raise
         Round_limit with the same post-mortem. *)
      let plan =
        Fault.plan ~drop:0.15 ~duplicate:0.1
          ~link_down:[ (root, (root + 1) mod n, 0, 2) ]
          ~crashes:[ ((root + 2) mod n, 1, 3) ]
          ~seed ()
      in
      let leg ~flat ~jobs =
        capture
          (fun ~observer g p ->
            let faults = Fault.instantiate plan in
            let telemetry = Telemetry.create ~clock:(fun () -> 0L) () in
            Sim.run ~max_rounds:300 ~observer ~faults ~telemetry ~flat ~jobs
              g p)
          g (flood_protocol root)
      in
      let active = leg ~flat:false ~jobs:1 in
      active = leg ~flat:true ~jobs:1 && active = leg ~flat:true ~jobs:3)

let prop_flat_equiv_lossless =
  QCheck.Test.make
    ~name:"flat = active = reference (lossless, telemetry on)" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let root = seed mod Graph.n g in
      let leg run =
        capture
          (fun ~observer g p ->
            let telemetry = Telemetry.create ~clock:(fun () -> 0L) () in
            run ~observer ~telemetry g p)
          g (flood_protocol root)
      in
      let flat =
        leg (fun ~observer ~telemetry g p ->
            Sim.run ~observer ~telemetry ~flat:true g p)
      in
      flat = leg (fun ~observer ~telemetry g p -> Sim.run ~observer ~telemetry g p)
      && flat
         = leg (fun ~observer ~telemetry g p ->
               Sim.run_reference ~observer ~telemetry g p))

let prop_flat_jobs_invariant =
  QCheck.Test.make
    ~name:"flat engine is jobs-invariant (1 = 2 = 4, observer incl.)"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let root = seed mod Graph.n g in
      (* Two scheduling regimes: the sparse fast path (no faults) and the
         full criterion sweep (faults present) must both be independent
         of the domain count. *)
      let sparse jobs =
        capture
          (fun ~observer g p -> Sim.run ~observer ~flat:true ~jobs g p)
          g (flood_protocol root)
      in
      let swept jobs =
        capture
          (fun ~observer g p ->
            let faults =
              Fault.instantiate (Fault.plan ~drop:0.1 ~seed ())
            in
            Sim.run ~max_rounds:300 ~observer ~faults ~flat:true ~jobs g p)
          g (flood_protocol root)
      in
      let s1 = sparse 1 and w1 = swept 1 in
      s1 = sparse 2 && s1 = sparse 4 && w1 = swept 2 && w1 = swept 4)

let prop_flat_native_bfs =
  QCheck.Test.make
    ~name:"Bfs.flat_protocol = Bfs.protocol (tree, stats, jobs sweep)"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let root = seed mod n in
      let tree, t_classic = Bfs.build g ~root in
      let flat jobs = Sim.run_flat ~jobs g (Bfs.flat_protocol ~n ~root) in
      let f1, t1 = flat 1 and f4, t4 = flat 4 in
      let same_tree = ref true in
      Array.iteri
        (fun v packed ->
          match Bfs.flat_state_parent_depth ~n packed with
          | None -> same_tree := false (* connected: everyone is reached *)
          | Some (p, d) ->
              if p <> tree.Bfs.parent.(v) || d <> tree.Bfs.depth.(v) then
                same_tree := false)
        f1;
      !same_tree && stats_eq t_classic t1 && f1 = f4 && stats_eq t1 t4)

(* ---------------------------------------------------- flat native ports *)

(* Every primitive ported natively to the flat engine must be bit-identical
   to its classic protocol — result, stats, and observer trace — with
   telemetry on, under a duplicate-only fault plan (drop/crash plans can
   legitimately stall an upcast forever, so the lossy legs stick to
   duplication), and for any domain count.  Legs per primitive:
   native flat at jobs 1/2/4, the classic active engine, and the classic
   protocol through the flat engine's boxed adapter (via the deprecated
   shim, which this file is allowlisted to touch). *)
let with_flat_shim f =
  Sim.use_flat_engine := true;
  Fun.protect ~finally:(fun () -> Sim.use_flat_engine := false) f

let record_leg f =
  let log = ref [] in
  let observer ~src ~dst ~bits = log := (src, dst, bits) :: !log in
  let telemetry = Telemetry.create ~clock:(fun () -> 0L) () in
  let r = f ~observer ~telemetry in
  r, List.rev !log

let dup_plan seed = Fault.plan ~duplicate:0.15 ~seed ()

let prop_flat_native_bellman_ford =
  QCheck.Test.make
    ~name:"Bellman-Ford native flat = classic (faults, telemetry, jobs)"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let r = rng (seed + 11) in
      let k = 1 + Dsf_util.Rng.int r 3 in
      let sources =
        List.init k (fun _ -> Dsf_util.Rng.int r n, Dsf_util.Rng.int r 5)
      in
      let radius =
        if Dsf_util.Rng.int r 2 = 0 then Some (5 + Dsf_util.Rng.int r 20)
        else None
      in
      let leg ?faults ?flat ?jobs () =
        record_leg (fun ~observer ~telemetry ->
            Bellman_ford.run ?radius ~observer ?faults ~telemetry ?flat ?jobs
              g ~sources)
      in
      let base = leg ~flat:false () in
      let faulty ?flat ?jobs () =
        leg ~faults:(Fault.instantiate (dup_plan seed)) ?flat ?jobs ()
      in
      base = leg ~flat:true ~jobs:1 ()
      && base = leg ~flat:true ~jobs:2 ()
      && base = leg ~flat:true ~jobs:4 ()
      && base = with_flat_shim (fun () -> leg ())
      && faulty ~flat:false () = faulty ~flat:true ~jobs:2 ())

let prop_flat_native_region_bf =
  QCheck.Test.make
    ~name:"Region-BF native flat = classic (faults, telemetry, jobs)"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let r = rng (seed + 13) in
      let k = 1 + Dsf_util.Rng.int r 3 in
      let sources =
        List.init k (fun i ->
            let v = Dsf_util.Rng.int r n in
            let off = Dsf_core.Frac.half (Dsf_core.Frac.of_int (Dsf_util.Rng.int r 6)) in
            v, off, i)
      in
      let frozen =
        Array.init n (fun v ->
            Dsf_util.Rng.int r 6 = 0
            && not (List.exists (fun (s, _, _) -> s = v) sources))
      in
      let leg ?faults ?flat ?jobs () =
        record_leg (fun ~observer ~telemetry ->
            Dsf_core.Region_bf.run ~observer ?faults ~telemetry ?flat ?jobs g
              ~sources ~frozen)
      in
      let base = leg ~flat:false () in
      let faulty ?flat ?jobs () =
        leg ~faults:(Fault.instantiate (dup_plan seed)) ?flat ?jobs ()
      in
      base = leg ~flat:true ~jobs:1 ()
      && base = leg ~flat:true ~jobs:2 ()
      && base = leg ~flat:true ~jobs:4 ()
      && base = with_flat_shim (fun () -> leg ())
      && faulty ~flat:false () = faulty ~flat:true ~jobs:2 ())

let prop_flat_native_tree_ops =
  QCheck.Test.make
    ~name:"tree ops native flat = classic (faults, telemetry, jobs)"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let tree = fst (Bfs.build g ~root:(seed mod n)) in
      let bits x = Dsf_util.Bitsize.int_bits (max 1 x) in
      let up ?faults ?flat ?jobs () =
        record_leg (fun ~observer ~telemetry ->
            Tree_ops.upcast ~observer ?faults ~telemetry ?flat ?jobs g ~tree
              ~items:(fun v -> [ v; v + n ])
              ~bits)
      in
      let bc ?faults ?flat ?jobs () =
        record_leg (fun ~observer ~telemetry ->
            Tree_ops.broadcast ~observer ?faults ~telemetry ?flat ?jobs g
              ~tree ~items:[ 1; 2; 3 ] ~bits)
      in
      (* The child-count handshake of [aggregate] dedups child reports by
         sender id (each child reports exactly once, so the sender is its
         own sequence stamp): duplicate-injecting plans leave the state
         trajectory — and the root's total — untouched, so the lossy legs
         below compare against each other AND against the lossless sum. *)
      let ag ?faults ?flat ?jobs () =
        record_leg (fun ~observer ~telemetry ->
            Tree_ops.aggregate ~observer ?faults ~telemetry ?flat ?jobs g
              ~tree ~value:Fun.id ~combine:( + ) ~bits)
      in
      let dup () = Fault.instantiate (dup_plan seed) in
      let base_up = up ~flat:false () in
      let base_bc = bc ~flat:false () in
      let base_ag = ag ~flat:false () in
      base_up = up ~flat:true ~jobs:1 ()
      && base_up = up ~flat:true ~jobs:4 ()
      && base_up = with_flat_shim (fun () -> up ())
      && base_bc = bc ~flat:true ~jobs:1 ()
      && base_bc = bc ~flat:true ~jobs:4 ()
      && base_bc = with_flat_shim (fun () -> bc ())
      && base_ag = ag ~flat:true ~jobs:1 ()
      && base_ag = ag ~flat:true ~jobs:4 ()
      && base_ag = with_flat_shim (fun () -> ag ())
      && up ~faults:(dup ()) ~flat:false ()
         = up ~faults:(dup ()) ~flat:true ~jobs:2 ()
      && bc ~faults:(dup ()) ~flat:false ()
         = bc ~faults:(dup ()) ~flat:true ~jobs:2 ()
      && ag ~faults:(dup ()) ~flat:false ()
         = ag ~faults:(dup ()) ~flat:true ~jobs:2 ()
      && fst
           (Tree_ops.aggregate ~faults:(dup ()) g ~tree ~value:Fun.id
              ~combine:( + ) ~bits)
         = fst
             (Tree_ops.aggregate g ~tree ~value:Fun.id ~combine:( + ) ~bits))

let prop_flat_native_pipeline =
  QCheck.Test.make
    ~name:"filtered upcast native flat = classic (faults, stop, jobs)"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let r = rng (seed + 17) in
      let tree = fst (Bfs.build g ~root:(Dsf_util.Rng.int r n)) in
      let vn = 10 in
      let items_all =
        List.init 20 (fun i ->
            let a = Dsf_util.Rng.int r vn and b = Dsf_util.Rng.int r vn in
            if a = b then None
            else Some (Dsf_util.Rng.int r n, { Pipeline.key = i; a; b }))
        |> List.filter_map Fun.id
      in
      let items v =
        List.filter (fun (h, _) -> h = v) items_all |> List.map snd
      in
      let leg ?faults ?flat ?jobs ?stop_at_root () =
        record_leg (fun ~observer ~telemetry ->
            Pipeline.filtered_upcast ~observer ?faults ~telemetry ?flat ?jobs
              ?stop_at_root g ~tree ~vn ~pre:[] ~items ~cmp:compare
              ~bits:(fun _ -> 16))
      in
      let base = leg ~flat:false () in
      let stop acc = List.length acc >= 3 in
      let faulty ?flat ?jobs () =
        leg ~faults:(Fault.instantiate (dup_plan seed)) ?flat ?jobs ()
      in
      base = leg ~flat:true ~jobs:1 ()
      && base = leg ~flat:true ~jobs:2 ()
      && base = leg ~flat:true ~jobs:4 ()
      && base = with_flat_shim (fun () -> leg ())
      && leg ~flat:false ~stop_at_root:stop ()
         = leg ~flat:true ~jobs:2 ~stop_at_root:stop ()
      && faulty ~flat:false () = faulty ~flat:true ~jobs:2 ())

let prop_flat_native_select_exchange =
  QCheck.Test.make
    ~name:"token flood + exchange native flat = classic (faults, jobs)"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let r = rng (seed + 19) in
      let tree = fst (Bfs.build g ~root:(seed mod n)) in
      let parent = tree.Bfs.parent in
      let seeds = Array.init n (fun _ -> Dsf_util.Rng.int r 3 = 0) in
      let tf ?faults ?flat ?jobs () =
        record_leg (fun ~observer ~telemetry ->
            Dsf_core.Select.token_flood ~observer ?faults ~telemetry ?flat
              ?jobs g ~parent ~seeds)
      in
      let ex ?faults ?flat ?jobs () =
        record_leg (fun ~observer ~telemetry ->
            Exchange.all_neighbors ~observer ?faults ~telemetry ?flat ?jobs g
              ~payload_bits:9)
      in
      let base_tf = tf ~flat:false () and base_ex = ex ~flat:false () in
      let dup () = Fault.instantiate (dup_plan seed) in
      base_tf = tf ~flat:true ~jobs:1 ()
      && base_tf = tf ~flat:true ~jobs:4 ()
      && base_tf = with_flat_shim (fun () -> tf ())
      && base_ex = ex ~flat:true ~jobs:1 ()
      && base_ex = ex ~flat:true ~jobs:4 ()
      && base_ex = with_flat_shim (fun () -> ex ())
      && tf ~faults:(dup ()) ~flat:false () = tf ~faults:(dup ()) ~flat:true ~jobs:2 ()
      && ex ~faults:(dup ()) ~flat:false () = ex ~faults:(dup ()) ~flat:true ~jobs:2 ())

let test_det_dsf_flat_e2e () =
  (* Full solve: every subroutine on the flat engine (native ports where
     they exist, the adapter elsewhere) must reproduce the classic result
     bit for bit, for any domain count. *)
  let r = rng 77 in
  let g = Gen.random_connected r ~n:60 ~extra_edges:60 ~max_w:12 in
  let labels = Gen.spread_labels r g ~t:12 ~k:4 in
  let inst = Instance.make_ic g labels in
  let run ?flat ?jobs () =
    let res = Dsf_core.Det_dsf.run ?flat ?jobs inst in
    ( res.Dsf_core.Det_dsf.solution,
      res.Dsf_core.Det_dsf.weight,
      res.Dsf_core.Det_dsf.dual,
      res.Dsf_core.Det_dsf.merges,
      res.Dsf_core.Det_dsf.phase_count,
      res.Dsf_core.Det_dsf.max_edge_round_bits,
      Ledger.simulated res.Dsf_core.Det_dsf.ledger,
      Ledger.charged res.Dsf_core.Det_dsf.ledger )
  in
  let base = run ~flat:false () in
  Alcotest.(check bool) "flat jobs=1" true (base = run ~flat:true ~jobs:1 ());
  Alcotest.(check bool) "flat jobs=4" true (base = run ~flat:true ~jobs:4 ())

let test_flat_adapter_inbox_order () =
  (* The adapter's inbox_list must present arrival order exactly as the
     classic engines build inboxes: senders ascending, send order within
     a sender.  A 2-source flood on a path makes node 2 hear 1 and 3 in
     the same round. *)
  let g = Gen.path 5 in
  let two_roots : (flood_state, unit) Sim.protocol =
    let p = flood_protocol 1 in
    {
      p with
      init =
        (fun view ->
          if view.Sim.node = 1 || view.Sim.node = 3 then
            { heard = Some 0; relayed = false }
          else { heard = None; relayed = false });
    }
  in
  let (s1, t1), (s2, t2) =
    ( Sim.run ~flat:true g two_roots,
      Sim.run g two_roots )
  in
  Alcotest.(check bool) "states" true (s1 = s2);
  Alcotest.(check bool) "stats" true (stats_eq t1 t2)

let suites =
  [
    ( "congest.sim_equiv",
      [
        qtest prop_flood_equiv;
        qtest prop_bellman_ford_equiv;
        qtest prop_pipeline_equiv;
        qtest prop_tree_ops_equiv;
        qtest prop_bfs_leader_exchange_equiv;
        qtest prop_telemetry_transparent;
        qtest prop_empty_plan_identity;
        qtest prop_flat_equiv_faults_telemetry;
        qtest prop_flat_equiv_lossless;
        qtest prop_flat_jobs_invariant;
        qtest prop_flat_native_bfs;
        qtest prop_flat_native_bellman_ford;
        qtest prop_flat_native_region_bf;
        qtest prop_flat_native_tree_ops;
        qtest prop_flat_native_pipeline;
        qtest prop_flat_native_select_exchange;
        Alcotest.test_case "det_dsf end-to-end on the flat engine" `Quick
          test_det_dsf_flat_e2e;
        Alcotest.test_case "flat adapter inbox order" `Quick
          test_flat_adapter_inbox_order;
        Alcotest.test_case "single node" `Quick test_single_node;
        Alcotest.test_case "round limit" `Quick test_round_limit_equiv;
        Alcotest.test_case "halt hook" `Quick test_halt_equiv;
        Alcotest.test_case "skips idle nodes" `Quick test_scheduler_skips_idle;
        Alcotest.test_case "observer order" `Quick test_observer_order_identical;
      ] );
  ]
