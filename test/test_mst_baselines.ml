(* Tests for the GKP-style MST, leader election, and a few simulator
   corners not covered elsewhere. *)

open Dsf_graph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

(* ---------------------------------------------------------------- Mst_gkp *)

let test_gkp_exact_on_fixed_graphs () =
  List.iter
    (fun (name, g) ->
      let res = Dsf_baseline.Mst_gkp.run g in
      check Alcotest.int (name ^ " weight") (Mst.weight g)
        res.Dsf_baseline.Mst_gkp.weight;
      Alcotest.(check bool) (name ^ " spanning") true
        (Mst.is_spanning_tree g res.Dsf_baseline.Mst_gkp.solution))
    [
      "grid", Gen.reweight (rng 1) ~max_w:9 (Gen.grid ~rows:5 ~cols:6);
      "cycle", Gen.reweight (rng 2) ~max_w:9 (Gen.cycle 20);
      "dense", Gen.random_connected (rng 3) ~n:25 ~extra_edges:120 ~max_w:30;
      "path", Gen.path 15;
    ]

let test_gkp_fragment_bound () =
  let g = Gen.random_connected (rng 4) ~n:100 ~extra_edges:150 ~max_w:20 in
  let res = Dsf_baseline.Mst_gkp.run g in
  (* After phase 1, at most ~sqrt(n) fragments remain. *)
  Alcotest.(check bool) "fragments <= 2*sqrt n" true
    (res.Dsf_baseline.Mst_gkp.fragments_after_phase1 <= 20);
  Alcotest.(check bool) "few Boruvka iterations" true
    (res.Dsf_baseline.Mst_gkp.boruvka_iterations <= 8)

let test_gkp_beats_pipelined_at_scale () =
  let g = Gen.random_connected (rng 5) ~n:300 ~extra_edges:300 ~max_w:40 in
  let gkp = Dsf_baseline.Mst_gkp.run g in
  let plain = Dsf_baseline.Mst_distributed.run g in
  check Alcotest.int "same weight" plain.Dsf_baseline.Mst_distributed.weight
    gkp.Dsf_baseline.Mst_gkp.weight;
  Alcotest.(check bool) "GKP needs fewer rounds" true
    (Dsf_congest.Ledger.total gkp.Dsf_baseline.Mst_gkp.ledger
    < plain.Dsf_baseline.Mst_distributed.rounds)

let prop_gkp_equals_kruskal =
  QCheck.Test.make ~name:"GKP MST = Kruskal on random graphs" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let n = 15 + Dsf_util.Rng.int r 40 in
      let g = Gen.random_connected r ~n ~extra_edges:(2 * n) ~max_w:25 in
      (Dsf_baseline.Mst_gkp.run g).Dsf_baseline.Mst_gkp.weight = Mst.weight g)

(* ----------------------------------------------------------------- Leader *)

let test_leader_elects_max_id () =
  List.iter
    (fun g ->
      let res = Dsf_congest.Leader.elect g in
      check Alcotest.int "max id wins" (Graph.n g - 1)
        res.Dsf_congest.Leader.leader)
    [ Gen.path 10; Gen.star 8; Gen.grid ~rows:3 ~cols:4 ]

let test_leader_rounds_near_diameter () =
  let g = Gen.path 30 in
  let res = Dsf_congest.Leader.elect g in
  (* Information from node 29 must reach node 0: >= D rounds. *)
  Alcotest.(check bool) "at least D" true (res.Dsf_congest.Leader.rounds >= 29);
  Alcotest.(check bool) "within constant of D" true
    (res.Dsf_congest.Leader.rounds <= 29 + 4)

let prop_leader_on_random_graphs =
  QCheck.Test.make ~name:"leader election agrees everywhere" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Gen.random_connected (rng seed) ~n:30 ~extra_edges:20 ~max_w:5 in
      (Dsf_congest.Leader.elect g).Dsf_congest.Leader.leader = 29)

(* ---------------------------------------------------------- Component_ops *)

let test_gossip_per_component () =
  (* Two mask-components on a path: edges 0-1, 1-2 enabled; 3-4 enabled;
     edge 2-3 disabled splits them. *)
  let g = Gen.path 5 in
  let mask = [| true; true; false; true |] in
  let values v = Some (10 * (v + 1)) in
  let results, _ =
    Dsf_congest.Component_ops.component_min_item g ~mask ~values ~cmp:compare
      ~bits:(fun _ -> 8)
  in
  check Alcotest.(option int) "left min" (Some 10) results.(2);
  check Alcotest.(option int) "right min" (Some 40) results.(3)

let test_gossip_none_values () =
  let g = Gen.path 3 in
  let mask = [| true; true |] in
  let results, _ =
    Dsf_congest.Component_ops.component_min_item g ~mask
      ~values:(fun _ -> None)
      ~cmp:compare
      ~bits:(fun (_ : int) -> 8)
  in
  Array.iter (fun r -> check Alcotest.(option int) "empty" None r) results

let test_component_leaders () =
  let g = Gen.path 6 in
  let mask = [| true; true; false; false; true |] in
  let leaders, _ = Dsf_congest.Component_ops.leaders g ~mask in
  check Alcotest.(array int) "leaders" [| 2; 2; 2; 3; 5; 5 |] leaders

let prop_gossip_matches_central =
  QCheck.Test.make ~name:"gossip extremum = centralized per-component min"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let n = 20 in
      let g = Gen.random_connected r ~n ~extra_edges:15 ~max_w:5 in
      let mask =
        Array.init (Graph.m g) (fun _ -> Dsf_util.Rng.float r 1.0 < 0.5)
      in
      let values v = if v mod 3 = 0 then Some (100 - v) else None in
      let results, _ =
        Dsf_congest.Component_ops.component_min_item g ~mask ~values
          ~cmp:compare
          ~bits:(fun _ -> 8)
      in
      (* Centralized reference. *)
      let uf = Dsf_util.Union_find.create n in
      Array.iter
        (fun (e : Graph.edge) ->
          if mask.(e.id) then ignore (Dsf_util.Union_find.union uf e.u e.v))
        (Graph.edges g);
      let expected v =
        let rep = Dsf_util.Union_find.find uf v in
        let best = ref None in
        for u = 0 to n - 1 do
          if Dsf_util.Union_find.find uf u = rep then begin
            match values u, !best with
            | Some x, Some b when x < b -> best := Some x
            | Some x, None -> best := Some x
            | _ -> ()
          end
        done;
        !best
      in
      Array.for_all Fun.id (Array.init n (fun v -> results.(v) = expected v)))

(* --------------------------------------------------------------- Coloring *)

let tree_of g root = snd (Paths.bfs g ~src:root)

let test_cv_three_colors_path () =
  let g = Gen.path 20 in
  let parent = tree_of g 0 in
  let colors, stats = Dsf_congest.Coloring.three_color g ~parent in
  Array.iteri
    (fun v p ->
      if p >= 0 then
        Alcotest.(check bool) "proper" true (colors.(v) <> colors.(p)))
    parent;
  Array.iter
    (fun c -> Alcotest.(check bool) "in {0,1,2}" true (c >= 0 && c <= 2))
    colors;
  (* O(log* n) + constant rounds — tiny. *)
  Alcotest.(check bool) "few rounds" true (stats.Dsf_congest.Sim.rounds <= 20)

let test_cv_star () =
  (* A star stresses the shift-down: many children of one node. *)
  let g = Gen.star 30 in
  let parent = tree_of g 0 in
  let colors, _ = Dsf_congest.Coloring.three_color g ~parent in
  for v = 1 to 29 do
    Alcotest.(check bool) "leaf differs from hub" true (colors.(v) <> colors.(0))
  done

let prop_cv_proper_and_matching_maximal =
  QCheck.Test.make
    ~name:"CV coloring proper in {0,1,2}; matching valid and maximal"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let n = 5 + Dsf_util.Rng.int r 40 in
      let g = Gen.random_connected r ~n ~extra_edges:n ~max_w:5 in
      let parent = tree_of g (Dsf_util.Rng.int r n) in
      let colors, _ = Dsf_congest.Coloring.three_color g ~parent in
      let proper = ref true in
      Array.iteri
        (fun v p ->
          if p >= 0 && colors.(v) = colors.(p) then proper := false;
          if colors.(v) < 0 || colors.(v) > 2 then proper := false)
        parent;
      let matching, _ = Dsf_congest.Coloring.maximal_matching g ~parent in
      let used = Array.make n false in
      let valid = ref true in
      List.iter
        (fun (c, p) ->
          if parent.(c) <> p || used.(c) || used.(p) then valid := false;
          used.(c) <- true;
          used.(p) <- true)
        matching;
      Array.iteri
        (fun v p -> if p >= 0 && (not used.(v)) && not used.(p) then valid := false)
        parent;
      !proper && !valid)

(* ---------------------------------------------------------- Sim corners *)

let test_sim_halt_hook () =
  (* A counting protocol halted externally at a specific state. *)
  let g = Gen.path 2 in
  let proto : (int, unit) Dsf_congest.Sim.protocol =
    {
      init = (fun _ -> 0);
      step =
        (fun view ~round:_ count ~inbox:_ ->
          ( count + 1,
            Array.to_list view.Dsf_congest.Sim.nbrs
            |> List.map (fun (nb, _, _) -> nb, ()) ));
      is_done = (fun _ -> false);
      msg_bits = (fun () -> 1);
      wake = None;
    }
  in
  let states, stats =
    Dsf_congest.Sim.run ~halt:(fun sts -> sts.(0) >= 5) g proto
  in
  Alcotest.(check bool) "halted at the hook" true (states.(0) >= 5 && states.(0) <= 6);
  Alcotest.(check bool) "did not hit the limit" true (stats.Dsf_congest.Sim.rounds < 100)

let test_select_token_flood_direct () =
  (* Chain 0 <- 1 <- 2 <- 3 of parents; seed at 3 marks all three edges. *)
  let g = Gen.path 4 in
  let parent = [| -1; 0; 1; 2 |] in
  let seeds = [| false; false; false; true |] in
  let edges, _ = Dsf_core.Select.token_flood g ~parent ~seeds in
  check Alcotest.int "three edges" 3 (List.length (List.sort_uniq compare edges))

let test_select_token_flood_dedup () =
  (* Seeds at 2 and 3: the shared prefix is marked once. *)
  let g = Gen.path 4 in
  let parent = [| -1; 0; 1; 2 |] in
  let seeds = [| false; false; true; true |] in
  let edges, _ = Dsf_core.Select.token_flood g ~parent ~seeds in
  check Alcotest.int "still three edges" 3
    (List.length (List.sort_uniq compare edges))

let test_ledger_pp_smoke () =
  let l = Dsf_congest.Ledger.create () in
  Dsf_congest.Ledger.add l Dsf_congest.Ledger.Simulated "abc" 3;
  Dsf_congest.Ledger.add l Dsf_congest.Ledger.Charged "def" 4;
  let s = Format.asprintf "%a" Dsf_congest.Ledger.pp l in
  Alcotest.(check bool) "mentions totals" true
    (String.length s > 10
    &&
    let contains sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains "total=7" && contains "abc" && contains "def")

(* -------------------------------------------------------- error handling *)

let test_disconnected_graph_raises () =
  let g = Graph.make ~n:4 [ 0, 1, 1; 2, 3, 1 ] in
  let inst = Instance.make_ic g [| 0; -1; -1; 0 |] in
  Alcotest.check_raises "moat raises"
    (Invalid_argument "Moat: terminals of a component disconnected") (fun () ->
      ignore (Dsf_core.Moat.run inst))

let test_bfs_disconnected_raises () =
  let g = Graph.make ~n:3 [ 0, 1, 1 ] in
  Alcotest.check_raises "bfs raises"
    (Invalid_argument "Bfs.build: disconnected graph") (fun () ->
      ignore (Dsf_congest.Bfs.build g ~root:0))

let test_single_node_graph () =
  let g = Graph.make ~n:1 [] in
  let inst = Instance.make_ic g [| -1 |] in
  let res = Dsf_core.Moat.run inst in
  check Alcotest.int "empty solution" 0 res.Dsf_core.Moat.weight

let suites =
  [
    ( "baseline.mst_gkp",
      [
        Alcotest.test_case "exact on fixed graphs" `Quick test_gkp_exact_on_fixed_graphs;
        Alcotest.test_case "fragment bound" `Quick test_gkp_fragment_bound;
        Alcotest.test_case "beats pipelined at scale" `Quick test_gkp_beats_pipelined_at_scale;
        qtest prop_gkp_equals_kruskal;
      ] );
    ( "congest.leader",
      [
        Alcotest.test_case "elects max id" `Quick test_leader_elects_max_id;
        Alcotest.test_case "rounds ~ D" `Quick test_leader_rounds_near_diameter;
        qtest prop_leader_on_random_graphs;
      ] );
    ( "congest.component_ops",
      [
        Alcotest.test_case "per-component gossip" `Quick test_gossip_per_component;
        Alcotest.test_case "no values" `Quick test_gossip_none_values;
        Alcotest.test_case "leaders" `Quick test_component_leaders;
        qtest prop_gossip_matches_central;
      ] );
    ( "congest.coloring",
      [
        Alcotest.test_case "path 3-colored" `Quick test_cv_three_colors_path;
        Alcotest.test_case "star shift-down" `Quick test_cv_star;
        qtest prop_cv_proper_and_matching_maximal;
      ] );
    ( "congest.sim_corners",
      [
        Alcotest.test_case "halt hook" `Quick test_sim_halt_hook;
        Alcotest.test_case "token flood chain" `Quick test_select_token_flood_direct;
        Alcotest.test_case "token flood dedup" `Quick test_select_token_flood_dedup;
        Alcotest.test_case "ledger pp" `Quick test_ledger_pp_smoke;
      ] );
    ( "robustness",
      [
        Alcotest.test_case "disconnected terminals raise" `Quick test_disconnected_graph_raises;
        Alcotest.test_case "disconnected BFS raises" `Quick test_bfs_disconnected_raises;
        Alcotest.test_case "single node" `Quick test_single_node_graph;
      ] );
  ]
