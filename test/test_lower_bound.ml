open Dsf_graph
open Dsf_lower_bound

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

let test_cr_gadget_shape () =
  let a = [| true; false; true; false |] in
  let b = [| false; true; false; false |] in
  let gad = Gadgets.cr_gadget ~universe:4 ~rho:2 ~a ~b in
  let g = gad.Gadgets.cr.Instance.cr_graph in
  check Alcotest.int "n = 2u + 4" 12 (Graph.n g);
  check Alcotest.int "m = 2u + 4" 12 (Graph.m g);
  check Alcotest.int "two heavy edges" 2 (List.length gad.Gadgets.heavy_edges);
  List.iter
    (fun id ->
      check Alcotest.int "heavy weight = rho(2u+2)+1" 21 (Graph.edge g id).Graph.w)
    gad.Gadgets.heavy_edges;
  (* Diameter at most 4 as Lemma 3.1 claims. *)
  Alcotest.(check bool) "diameter <= 4" true (Paths.diameter_unweighted g <= 4)

let test_ic_gadget_shape () =
  let a = [| true; true; false |] in
  let b = [| false; true; true |] in
  let gad = Gadgets.ic_gadget ~universe:3 ~a ~b in
  let g = gad.Gadgets.ic.Instance.graph in
  check Alcotest.int "n = 2u + 2" 8 (Graph.n g);
  Alcotest.(check bool) "diameter <= 3" true (Paths.diameter_unweighted g <= 3);
  (* Only the common element 1 yields a two-terminal component. *)
  let m = Instance.minimalize gad.Gadgets.ic in
  check Alcotest.int "k after minimalize" 1 (Instance.component_count m)

let test_disjointness_helper () =
  Alcotest.(check bool) "disjoint" true
    (Gadgets.disjoint [| true; false |] [| false; true |]);
  Alcotest.(check bool) "intersecting" false
    (Gadgets.disjoint [| true; false |] [| true; true |])

let test_random_sets () =
  let a, b = Gadgets.random_sets (rng 1) ~universe:50 ~density:0.5 ~force_intersect:false in
  Alcotest.(check bool) "disjoint by construction" true (Gadgets.disjoint a b);
  let a2, b2 = Gadgets.random_sets (rng 2) ~universe:50 ~density:0.5 ~force_intersect:true in
  Alcotest.(check bool) "planted intersection" false (Gadgets.disjoint a2 b2);
  let common = ref 0 in
  Array.iteri (fun i x -> if x && b2.(i) then incr common) a2;
  check Alcotest.int "|A ∩ B| = 1" 1 !common

let solve_ic_distributed gad =
  (* The honest pipeline for the IC gadget: distributed minimalization
     (where the Omega(k) information must flow) followed by the
     deterministic solver. *)
  let out = Dsf_core.Transform.minimalize gad.Gadgets.ic in
  Dsf_core.Det_dsf.run out.Dsf_core.Transform.value

let test_ic_bridge_encodes_answer () =
  List.iter
    (fun force ->
      let a, b = Gadgets.random_sets (rng 7) ~universe:10 ~density:0.4 ~force_intersect:force in
      let gad = Gadgets.ic_gadget ~universe:10 ~a ~b in
      let res = solve_ic_distributed gad in
      Alcotest.(check bool)
        (Printf.sprintf "answer consistent (intersect=%b)" force)
        true
        (Gadgets.ic_answer_consistent gad res.Dsf_core.Det_dsf.solution))
    [ false; true ]

let test_cr_heavy_edges_encode_answer () =
  List.iter
    (fun force ->
      let a, b = Gadgets.random_sets (rng 8) ~universe:8 ~density:0.5 ~force_intersect:force in
      let gad = Gadgets.cr_gadget ~universe:8 ~rho:2 ~a ~b in
      let ic = (Dsf_core.Transform.cr_to_ic gad.Gadgets.cr).Dsf_core.Transform.value in
      let res = Dsf_core.Det_dsf.run ic in
      Alcotest.(check bool) "feasible for the requests" true
        (Instance.cr_is_feasible gad.Gadgets.cr res.Dsf_core.Det_dsf.solution);
      Alcotest.(check bool)
        (Printf.sprintf "answer consistent (intersect=%b)" force)
        true
        (Gadgets.cr_answer_consistent gad res.Dsf_core.Det_dsf.solution))
    [ false; true ]

let test_cut_bits_measured () =
  let a, b = Gadgets.random_sets (rng 9) ~universe:12 ~density:0.5 ~force_intersect:false in
  let gad = Gadgets.cr_gadget ~universe:12 ~rho:2 ~a ~b in
  let _, bits =
    Gadgets.cut_bits gad.Gadgets.cr_side (fun ~observer ->
        let ic =
          (Dsf_core.Transform.cr_to_ic ~observer gad.Gadgets.cr)
            .Dsf_core.Transform.value
        in
        Dsf_core.Det_dsf.run ~observer ic)
  in
  Alcotest.(check bool) "nontrivial communication across the cut" true (bits > 0)

let test_cut_bits_scale_with_universe () =
  let measure u =
    let a, b = Gadgets.random_sets (rng u) ~universe:u ~density:0.5 ~force_intersect:false in
    let gad = Gadgets.cr_gadget ~universe:u ~rho:2 ~a ~b in
    let _, bits =
      Gadgets.cut_bits gad.Gadgets.cr_side (fun ~observer ->
          let ic =
            (Dsf_core.Transform.cr_to_ic ~observer gad.Gadgets.cr)
              .Dsf_core.Transform.value
          in
          Dsf_core.Det_dsf.run ~observer ic)
    in
    bits
  in
  let b8 = measure 8 and b32 = measure 32 in
  Alcotest.(check bool) "bits grow with the universe" true (b32 > 2 * b8)

let test_observer_scoping () =
  (* The observer must not leak outside with_observer. *)
  let count = ref 0 in
  let g = Gen.path 4 in
  let _ =
    Dsf_congest.Sim.with_observer
      (fun ~src:_ ~dst:_ ~bits -> count := !count + bits)
      (fun () -> Dsf_congest.Bfs.build g ~root:0)
  in
  let seen = !count in
  Alcotest.(check bool) "observed inside" true (seen > 0);
  let _ = Dsf_congest.Bfs.build g ~root:0 in
  check Alcotest.int "not observed outside" seen !count

let prop_ic_gadget_answers =
  QCheck.Test.make
    ~name:"IC gadget: bridge in solution iff sets intersect" ~count:12
    QCheck.(pair (int_range 3 12) bool)
    (fun (u, force) ->
      let a, b = Gadgets.random_sets (rng (u * 2 + Bool.to_int force)) ~universe:u
          ~density:0.5 ~force_intersect:force
      in
      (* Need at least one request on each side for a meaningful instance. *)
      let gad = Gadgets.ic_gadget ~universe:u ~a ~b in
      let res = solve_ic_distributed gad in
      Gadgets.ic_answer_consistent gad res.Dsf_core.Det_dsf.solution)

let suites =
  [
    ( "lower_bound.gadgets",
      [
        Alcotest.test_case "CR gadget shape (Fig 1 left)" `Quick test_cr_gadget_shape;
        Alcotest.test_case "IC gadget shape (Fig 1 right)" `Quick test_ic_gadget_shape;
        Alcotest.test_case "disjointness" `Quick test_disjointness_helper;
        Alcotest.test_case "random sets" `Quick test_random_sets;
        Alcotest.test_case "IC bridge = SD answer" `Quick test_ic_bridge_encodes_answer;
        Alcotest.test_case "CR heavy edges = SD answer" `Quick test_cr_heavy_edges_encode_answer;
        Alcotest.test_case "cut bits measured" `Quick test_cut_bits_measured;
        Alcotest.test_case "cut bits scale" `Quick test_cut_bits_scale_with_universe;
        Alcotest.test_case "observer scoping" `Quick test_observer_scoping;
        qtest prop_ic_gadget_answers;
      ] );
  ]

(* Appended: padded-gadget tests (the remarks after Lemma 3.1). *)

let test_padded_gadget_shape () =
  let a = [| true; false; true |] and b = [| false; true; false |] in
  let padding =
    { Gadgets.extra_nodes = 10; extra_diameter = 6; extra_components = 4 }
  in
  let base = Gadgets.cr_gadget ~universe:3 ~rho:2 ~a ~b in
  let padded = Gadgets.cr_gadget_padded ~universe:3 ~rho:2 ~a ~b ~padding in
  let g0 = base.Gadgets.cr.Instance.cr_graph in
  let g = padded.Gadgets.cr.Instance.cr_graph in
  check Alcotest.int "n inflated" (Graph.n g0 + 16 + 8) (Graph.n g);
  Alcotest.(check bool) "diameter inflated" true
    (Paths.diameter_unweighted g > Paths.diameter_unweighted g0);
  (* k inflated: the request components include the padding pairs. *)
  let ic = Instance.ic_of_cr padded.Gadgets.cr in
  let ic0 = Instance.ic_of_cr base.Gadgets.cr in
  check Alcotest.int "k inflated" (Instance.component_count ic0 + 4)
    (Instance.component_count ic)

let test_padded_gadget_still_encodes_answer () =
  List.iter
    (fun force ->
      let a, b =
        Gadgets.random_sets (rng 17) ~universe:6 ~density:0.5
          ~force_intersect:force
      in
      let padding =
        { Gadgets.extra_nodes = 6; extra_diameter = 3; extra_components = 2 }
      in
      let gad = Gadgets.cr_gadget_padded ~universe:6 ~rho:2 ~a ~b ~padding in
      let ic = (Dsf_core.Transform.cr_to_ic gad.Gadgets.cr).Dsf_core.Transform.value in
      let res = Dsf_core.Det_dsf.run ic in
      Alcotest.(check bool) "feasible" true
        (Instance.cr_is_feasible gad.Gadgets.cr res.Dsf_core.Det_dsf.solution);
      Alcotest.(check bool) "answer preserved" true
        (Gadgets.cr_answer_consistent gad res.Dsf_core.Det_dsf.solution))
    [ false; true ]

let test_padding_stays_off_the_cut () =
  (* The padded instance must not move MORE bits across the cut than the
     padding-free one by more than the unavoidable broadcast of the extra
     components' bookkeeping. *)
  let a, b =
    Gadgets.random_sets (rng 18) ~universe:8 ~density:0.5 ~force_intersect:false
  in
  let solve cr side =
    snd
      (Gadgets.cut_bits side (fun ~observer ->
           let ic =
             (Dsf_core.Transform.cr_to_ic ~observer cr)
               .Dsf_core.Transform.value
           in
           Dsf_core.Det_dsf.run ~observer ic))
  in
  let base = Gadgets.cr_gadget ~universe:8 ~rho:2 ~a ~b in
  let padding =
    { Gadgets.extra_nodes = 20; extra_diameter = 0; extra_components = 0 }
  in
  let padded = Gadgets.cr_gadget_padded ~universe:8 ~rho:2 ~a ~b ~padding in
  let bits0 = solve base.Gadgets.cr base.Gadgets.cr_side in
  let bits1 = solve padded.Gadgets.cr padded.Gadgets.cr_side in
  Alcotest.(check bool) "node padding does not blow up cut traffic" true
    (bits1 <= 3 * bits0)

let padded_suites =
  [
    ( "lower_bound.padding",
      [
        Alcotest.test_case "shape" `Quick test_padded_gadget_shape;
        Alcotest.test_case "answer preserved" `Quick test_padded_gadget_still_encodes_answer;
        Alcotest.test_case "padding off the cut" `Quick test_padding_stays_off_the_cut;
      ] );
  ]

let suites = suites @ padded_suites
