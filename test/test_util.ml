open Dsf_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_deterministic () =
  let a = Rng.split (Rng.create 7) 3 and b = Rng.split (Rng.create 7) 3 in
  for _ = 1 to 50 do
    check Alcotest.int "same split stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let a = Rng.split parent 1 and b = Rng.split parent 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" false (xs = ys)

let test_rng_int_in_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int_in rng 5 9 in
    Alcotest.(check bool) "in range" true (x >= 5 && x <= 9)
  done

let test_rng_permutation () =
  let rng = Rng.create 3 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample () =
  let rng = Rng.create 4 in
  let s = Rng.sample_without_replacement rng 10 1000 in
  check Alcotest.int "size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 9 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done;
  Array.iter
    (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 1000))
    s

let prop_sample_distinct =
  QCheck.Test.make ~name:"sample_without_replacement yields distinct values"
    ~count:50
    QCheck.(pair (int_range 0 30) small_int)
    (fun (m, seed) ->
      let rng = Rng.create seed in
      let n = max m 30 in
      let s = Rng.sample_without_replacement rng m n in
      let sorted = Array.copy s in
      Array.sort compare sorted;
      let distinct = ref true in
      for i = 1 to m - 1 do
        if sorted.(i) = sorted.(i - 1) then distinct := false
      done;
      !distinct && Array.length s = m)

(* --------------------------------------------------------------- Union_find *)

let test_uf_basic () =
  let uf = Union_find.create 10 in
  check Alcotest.int "initial sets" 10 (Union_find.n_sets uf);
  Alcotest.(check bool) "union new" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union dup" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  check Alcotest.int "sets after union" 9 (Union_find.n_sets uf);
  check Alcotest.int "size" 2 (Union_find.size uf 0)

let test_uf_transitive () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 2);
  Alcotest.(check bool) "transitively same" true (Union_find.same uf 0 3);
  check Alcotest.int "size" 4 (Union_find.size uf 3)

let test_uf_copy_isolated () =
  let uf = Union_find.create 4 in
  ignore (Union_find.union uf 0 1);
  let c = Union_find.copy uf in
  ignore (Union_find.union c 2 3);
  Alcotest.(check bool) "copy unioned" true (Union_find.same c 2 3);
  Alcotest.(check bool) "original untouched" false (Union_find.same uf 2 3)

let test_uf_groups () =
  let uf = Union_find.create 5 in
  ignore (Union_find.union uf 0 4);
  ignore (Union_find.union uf 1 2);
  let groups = Union_find.groups uf in
  check Alcotest.int "group count" 3 (Hashtbl.length groups);
  let sizes =
    Hashtbl.fold (fun _ members acc -> List.length members :: acc) groups []
    |> List.sort compare
  in
  check Alcotest.(list int) "group sizes" [ 1; 2; 2 ] sizes

let prop_uf_nsets =
  QCheck.Test.make ~name:"n_sets = n - successful unions" ~count:100
    QCheck.(pair (int_range 2 40) (small_list (pair small_nat small_nat)))
    (fun (n, pairs) ->
      let uf = Union_find.create n in
      let successes =
        List.fold_left
          (fun acc (a, b) ->
            let a = a mod n and b = b mod n in
            if Union_find.union uf a b then acc + 1 else acc)
          0 pairs
      in
      Union_find.n_sets uf = n - successes)

(* ------------------------------------------------------------------ Heap *)

let test_heap_sorts () =
  let h = Heap.of_list ~cmp:compare [ 5; 3; 8; 1; 9; 2 ] in
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check Alcotest.(list int) "heap sort" [ 1; 2; 3; 5; 8; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  check Alcotest.(option int) "pop empty" None (Heap.pop h);
  check Alcotest.(option int) "peek empty" None (Heap.peek h)

let test_heap_peek () =
  let h = Heap.create ~cmp:compare in
  Heap.push h 4;
  Heap.push h 2;
  check Alcotest.(option int) "peek min" (Some 2) (Heap.peek h);
  check Alcotest.int "size unchanged by peek" 2 (Heap.size h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:100
    QCheck.(list int)
    (fun xs ->
      let h = Heap.of_list ~cmp:compare xs in
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* --------------------------------------------------------------- Bitsize *)

let test_bitsize () =
  check Alcotest.int "bits 0" 1 (Bitsize.int_bits 0);
  check Alcotest.int "bits 1" 1 (Bitsize.int_bits 1);
  check Alcotest.int "bits 2" 2 (Bitsize.int_bits 2);
  check Alcotest.int "bits 255" 8 (Bitsize.int_bits 255);
  check Alcotest.int "bits 256" 9 (Bitsize.int_bits 256);
  check Alcotest.int "id bits n=2" 1 (Bitsize.id_bits ~n:2);
  check Alcotest.int "id bits n=1024" 10 (Bitsize.id_bits ~n:1024)

let test_budget_logarithmic () =
  let b1 = Bitsize.congest_budget ~n:16 in
  let b2 = Bitsize.congest_budget ~n:256 in
  check Alcotest.int "budget doubles when log doubles" (2 * b1) b2

(* ----------------------------------------------------------------- Stats *)

let test_stats_mean_median () =
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  check (Alcotest.float 1e-9) "median even" 2.5 (Stats.median [ 1.; 2.; 3.; 4. ]);
  check (Alcotest.float 1e-9) "median odd" 3. (Stats.median [ 5.; 3.; 1. ])

let test_stats_linear_fit () =
  let slope, intercept =
    Stats.linear_fit [ 1., 3.; 2., 5.; 3., 7.; 4., 9. ]
  in
  check (Alcotest.float 1e-9) "slope" 2. slope;
  check (Alcotest.float 1e-9) "intercept" 1. intercept

let test_stats_loglog () =
  (* y = x^2 exactly -> slope 2 *)
  let pts = List.init 5 (fun i ->
      let x = float_of_int (i + 1) in
      x, x *. x)
  in
  check (Alcotest.float 1e-9) "quadratic exponent" 2. (Stats.loglog_slope pts)

let test_stats_ratio_summary () =
  let lo, mean, hi = Stats.ratio_summary [ 2., 1.; 3., 1.; 4., 2. ] in
  check (Alcotest.float 1e-9) "lo" 2. lo;
  check (Alcotest.float 1e-9) "hi" 3. hi;
  Alcotest.(check bool) "mean between" true (mean >= lo && mean <= hi)

(* ----------------------------------------------------------------- Pack *)

let invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: Invalid_argument expected" name

let test_pack_exact_62 () =
  (* The widest legal layout: exactly 62 bits.  The packed word with every
     field saturated is still a non-negative immediate. *)
  (match Pack.layout [ 31; 31 ] with
  | [| a; b |] ->
      check Alcotest.int "total width" 62 (Pack.total_width [| a; b |]);
      let top = (1 lsl 31) - 1 in
      let w = Pack.put b top (Pack.put a top 0) in
      Alcotest.(check bool) "saturated word non-negative" true (w >= 0);
      check Alcotest.int "field a round-trips" top (Pack.get a w);
      check Alcotest.int "field b round-trips" top (Pack.get b w)
  | _ -> Alcotest.fail "layout arity");
  (match Pack.layout [ 62 ] with
  | [| f |] ->
      check Alcotest.int "single 62-bit field" 62 (Pack.field_width f)
  | _ -> Alcotest.fail "layout arity")

let test_pack_overflow_rejected () =
  (* One bit over the word, in either shape, is a construction error. *)
  invalid "63-bit pair" (fun () -> Pack.layout [ 31; 32 ]);
  invalid "single 63-bit field" (fun () -> Pack.layout [ 63 ]);
  invalid "zero-width field" (fun () -> Pack.layout [ 0; 4 ]);
  invalid "empty layout" (fun () -> Pack.layout []);
  invalid "negative width_of_max" (fun () -> Pack.width_of_max (-1))

let test_pack_sentinel_roundtrip () =
  (* Negative ints live outside every packed domain, so -1 is free as an
     out-of-band sentinel (the flat BFS "unreached" state): writing it is
     rejected, and a sentinel-carrying variable round-trips untouched. *)
  match Pack.layout [ 1; 7; 8 ] with
  | [| flag; depth; parent |] ->
      Alcotest.(check bool) "-1 does not fit" false (Pack.fits depth (-1));
      invalid "put -1" (fun () -> Pack.put depth (-1) 0);
      invalid "set -1" (fun () -> Pack.set depth (-1) 0);
      let st = ref (-1) in
      (if !st >= 0 then st := Pack.put flag 1 !st);
      check Alcotest.int "sentinel survives the guarded path" (-1) !st;
      (* leaving the sentinel: a fresh word packs and unpacks exactly *)
      st := Pack.put parent 200 (Pack.put depth 100 (Pack.put flag 1 0));
      check Alcotest.int "flag" 1 (Pack.get flag !st);
      check Alcotest.int "depth" 100 (Pack.get depth !st);
      check Alcotest.int "parent" 200 (Pack.get parent !st);
      st := Pack.set depth 0 !st;
      check Alcotest.int "cleared depth" 0 (Pack.get depth !st);
      check Alcotest.int "parent untouched by set" 200 (Pack.get parent !st)
  | _ -> Alcotest.fail "layout arity"

let test_pack_edge_values () =
  match Pack.layout [ 4; 4 ] with
  | [| a; b |] ->
      Alcotest.(check bool) "0 fits" true (Pack.fits a 0);
      Alcotest.(check bool) "2^w-1 fits" true (Pack.fits a 15);
      Alcotest.(check bool) "2^w rejected" false (Pack.fits a 16);
      invalid "put 2^w" (fun () -> Pack.put a 16 0);
      check Alcotest.int "0 round-trips" 0 (Pack.get a (Pack.put a 0 0));
      check Alcotest.int "2^w-1 round-trips in the high field" 15
        (Pack.get b (Pack.put b 15 0));
      (* width_of_max edges: powers of two straddle a width boundary *)
      check Alcotest.int "width_of_max 0" 1 (Pack.width_of_max 0);
      check Alcotest.int "width_of_max 1" 1 (Pack.width_of_max 1);
      check Alcotest.int "width_of_max 2" 2 (Pack.width_of_max 2);
      check Alcotest.int "width_of_max 15" 4 (Pack.width_of_max 15);
      check Alcotest.int "width_of_max 16" 5 (Pack.width_of_max 16)
  | _ -> Alcotest.fail "layout arity"

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "split deterministic" `Quick test_rng_split_deterministic;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
        Alcotest.test_case "permutation" `Quick test_rng_permutation;
        Alcotest.test_case "sample without replacement" `Quick test_rng_sample;
        qtest prop_sample_distinct;
      ] );
    ( "util.union_find",
      [
        Alcotest.test_case "basic" `Quick test_uf_basic;
        Alcotest.test_case "transitive" `Quick test_uf_transitive;
        Alcotest.test_case "copy isolated" `Quick test_uf_copy_isolated;
        Alcotest.test_case "groups" `Quick test_uf_groups;
        qtest prop_uf_nsets;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "sorts" `Quick test_heap_sorts;
        Alcotest.test_case "empty" `Quick test_heap_empty;
        Alcotest.test_case "peek" `Quick test_heap_peek;
        qtest prop_heap_sorted;
      ] );
    ( "util.pack",
      [
        Alcotest.test_case "exact 62-bit layouts" `Quick test_pack_exact_62;
        Alcotest.test_case "overflow rejected" `Quick
          test_pack_overflow_rejected;
        Alcotest.test_case "-1 sentinel round-trip" `Quick
          test_pack_sentinel_roundtrip;
        Alcotest.test_case "edge values" `Quick test_pack_edge_values;
      ] );
    ( "util.bitsize",
      [
        Alcotest.test_case "int bits" `Quick test_bitsize;
        Alcotest.test_case "budget logarithmic" `Quick test_budget_logarithmic;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean/median" `Quick test_stats_mean_median;
        Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
        Alcotest.test_case "loglog slope" `Quick test_stats_loglog;
        Alcotest.test_case "ratio summary" `Quick test_stats_ratio_summary;
      ] );
  ]
