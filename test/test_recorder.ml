(* Flight recorder: serialization round-trips, engine transparency, the
   cross-engine / cross-jobs byte-identity contract, and golden causal
   queries on the pinned Figure-1 gadget.

   The byte-identity suite is the recorder's core promise: the very same
   protocol recorded through Sim.run, Sim.run_reference and Sim.run_flat
   (at any ?jobs) must serialize to the very same dsf-flightlog bytes —
   steps are only recorded for mail-consuming nodes (causally inert empty
   steps would differ between the reference loop, which steps everyone,
   and the active/flat engines), and the flat engine's per-domain staging
   buffers are flushed at the barrier in domain = node order. *)

open Dsf_graph
open Dsf_congest

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let random_graph seed =
  let r = Dsf_util.Rng.create seed in
  let n = 8 + Dsf_util.Rng.int r 20 in
  let extra = Dsf_util.Rng.int r (2 * n) in
  let max_w = 1 + Dsf_util.Rng.int r 12 in
  Gen.random_connected r ~n ~extra_edges:extra ~max_w

(* ------------------------------------------------------- serialization *)

let test_roundtrip () =
  let r = Recorder.create ~now:0 ~meta:[ "n", 5; "D", 2 ] () in
  Recorder.meta_add r "t" 3;
  Recorder.span_open r "phase";
  let b = Recorder.buf_make () in
  Recorder.ev_step b 4;
  Recorder.ev_send b ~src:4 ~dst:0 ~bits:7 ~fate:1;
  Recorder.ev_send b ~src:4 ~dst:1 ~bits:1_000_000 ~fate:0;
  Recorder.ev_down b 2;
  Recorder.ev_restart b 2;
  Recorder.round r 0;
  Recorder.flush r b;
  Recorder.span_close r "phase";
  Recorder.recovery r ~retransmissions:9 ~restores:1 ~checkpoint_bits:128;
  let s = Recorder.to_string r in
  match Recorder.parse s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok log ->
      check Alcotest.(list (pair string int)) "meta"
        [ "captured_unix_s", 0; "n", 5; "D", 2; "t", 3 ]
        (Recorder.log_meta log);
      check Alcotest.int "event count" 9 (Recorder.log_event_count log);
      let expect : Recorder.event list =
        [
          Span_open "phase";
          Round 0;
          Step 4;
          Send { src = 4; dst = 0; bits = 7; fate = 1 };
          Send { src = 4; dst = 1; bits = 1_000_000; fate = 0 };
          Down 2;
          Restart 2;
          Span_close "phase";
          Recovery { retransmissions = 9; restores = 1; checkpoint_bits = 128 };
        ]
      in
      check Alcotest.bool "events round-trip" true
        (Recorder.log_events log = expect)

let test_negative_meta_rejected () =
  let r = Recorder.create ~now:0 () in
  Alcotest.check_raises "negative meta value"
    (Invalid_argument "Recorder.meta_add: negative value -1 for \"bad\"")
    (fun () -> Recorder.meta_add r "bad" (-1))

let test_corrupt_rejected () =
  (match Recorder.parse "not a flightlog" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  let r = Recorder.create ~now:0 () in
  let b = Recorder.buf_make () in
  Recorder.ev_send b ~src:1 ~dst:2 ~bits:3 ~fate:1;
  Recorder.round r 0;
  Recorder.flush r b;
  let s = Recorder.to_string r in
  match Recorder.parse (String.sub s 0 (String.length s - 1)) with
  | Ok _ -> Alcotest.fail "truncated log accepted"
  | Error _ -> ()

(* -------------------------------------------------------- transparency *)

(* A recorder only observes: states, stats and observer traces of a
   recorded run must be bit-identical to the bare run, on all three
   engines. *)
let prop_recorder_transparent =
  QCheck.Test.make ~name:"?recorder never perturbs a run (all engines)"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let root = seed mod n in
      let active recorder =
        let log = ref [] in
        let observer ~src ~dst ~bits = log := (src, dst, bits) :: !log in
        let s, t = Sim.run ~observer ?recorder g (Bfs.protocol ~root) in
        s, t, List.rev !log
      in
      let reference recorder =
        let log = ref [] in
        let observer ~src ~dst ~bits = log := (src, dst, bits) :: !log in
        let s, t =
          Sim.run_reference ~observer ?recorder g (Bfs.protocol ~root)
        in
        s, t, List.rev !log
      in
      let flat recorder =
        let log = ref [] in
        let observer ~src ~dst ~bits = log := (src, dst, bits) :: !log in
        let s, t =
          Sim.run_flat ~observer ?recorder g (Bfs.flat_protocol ~n ~root)
        in
        s, t, List.rev !log
      in
      let rcd () = Some (Recorder.create ~now:0 ()) in
      active None = active (rcd ())
      && reference None = reference (rcd ())
      && flat None = flat (rcd ()))

(* ------------------------------------------------------- byte identity *)

let record_active ?faults g ~root =
  let r = Recorder.create ~now:0 () in
  ignore (Sim.run ?faults ~recorder:r g (Bfs.protocol ~root));
  Recorder.to_string r

let record_reference g ~root =
  let r = Recorder.create ~now:0 () in
  ignore (Sim.run_reference ~recorder:r g (Bfs.protocol ~root));
  Recorder.to_string r

let record_flat ?faults ~jobs g ~root =
  let n = Graph.n g in
  let r = Recorder.create ~now:0 () in
  ignore (Sim.run_flat ?faults ~recorder:r ~jobs g (Bfs.flat_protocol ~n ~root));
  Recorder.to_string r

let prop_log_engine_invariant =
  QCheck.Test.make
    ~name:"flightlog bytes: run = run_reference = run_flat j1/j2/j4"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let root = seed mod Graph.n g in
      let base = record_active g ~root in
      String.length base > 0
      && record_reference g ~root = base
      && List.for_all
           (fun jobs -> record_flat ~jobs g ~root = base)
           [ 1; 2; 4 ])

(* Crash windows positioned well before the BFS wavefront arrives: the
   crashed nodes restart re-initialized long before any mail reaches
   them, so the protocol still quiesces on every engine while the log
   carries Down/Restart events — letting classic and flat be compared
   byte-for-byte on a faulted run. *)
let test_log_crash_classic_flat_identical () =
  let g = Gen.path 24 in
  let plan = Fault.plan ~crashes:[ 23, 1, 3; 12, 2, 3 ] ~seed:11 () in
  let base = record_active ~faults:(Fault.instantiate plan) g ~root:0 in
  (match Recorder.parse base with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok log ->
      let count p = List.length (List.filter p (Recorder.log_events log)) in
      check Alcotest.int "Down events" 3
        (count (function Recorder.Down _ -> true | _ -> false));
      check Alcotest.int "Restart events" 2
        (count (function Recorder.Restart _ -> true | _ -> false)));
  List.iter
    (fun jobs ->
      check Alcotest.bool
        (Printf.sprintf "flat jobs=%d matches classic" jobs)
        true
        (record_flat ~faults:(Fault.instantiate plan) ~jobs g ~root:0 = base))
    [ 1; 2; 4 ]

(* Raw drops can wedge an unhardened protocol below quiescence; the runs
   are capped and the abort swallowed — a Round_limit fires at the same
   deterministic round for every jobs, and only complete rounds are ever
   flushed, so the logs must still agree byte-for-byte. *)
let prop_log_jobs_invariant_faulted =
  QCheck.Test.make
    ~name:"flightlog bytes: drops+crashes, flat j1 = j2 = j4" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph seed in
      let n = Graph.n g in
      let root = seed mod n in
      let plan =
        Fault.plan ~drop:0.2 ~crashes:[ seed mod n, 2, 3 ] ~seed:(seed + 1) ()
      in
      let record jobs =
        let r = Recorder.create ~now:0 () in
        (try
           ignore
             (Sim.run_flat ~max_rounds:300 ~faults:(Fault.instantiate plan)
                ~recorder:r ~jobs g (Bfs.flat_protocol ~n ~root))
         with Sim.Round_limit _ -> ());
        Recorder.to_string r
      in
      let base = record 1 in
      String.length base > 0
      && List.for_all (fun jobs -> record jobs = base) [ 2; 4 ])

(* Telemetry spans land in the log too, and stay jobs-invariant: the
   span appenders are coordinator-only, outside the domain fan-out. *)
let test_spans_in_log_jobs_invariant () =
  let g = Gen.path 32 in
  let n = Graph.n g in
  let run jobs =
    let r = Recorder.create ~now:0 () in
    let tel = Telemetry.create ~clock:(fun () -> 0L) ~recorder:r () in
    Telemetry.span tel "bfs" (fun () ->
        ignore
          (Sim.run_flat ~telemetry:tel ~recorder:r ~jobs g
             (Bfs.flat_protocol ~n ~root:0)));
    Recorder.to_string r
  in
  let base = run 1 in
  (match Recorder.parse base with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok log ->
      check Alcotest.bool "span recorded" true
        (List.mem (Recorder.Span_open "bfs") (Recorder.log_events log)));
  List.iter
    (fun jobs ->
      check Alcotest.bool
        (Printf.sprintf "bytes identical at jobs=%d" jobs)
        true
        (run jobs = base))
    [ 2; 4 ]

(* --------------------------------------- golden queries (Figure 1 gadget) *)

(* The pinned set-disjointness gadget from the paper's Figure 1 (universe
   8, fixed member sets), solved end-to-end by det_dsf on the flat engine
   with the recorder attached the way `dsf_cli solve --record` attaches
   it.  The analysis numbers and the query renderings are part of the
   format's contract: a change here is a (deliberate) flightlog or
   inspector change. *)

let gadget_analysis =
  lazy
    (let universe = 8 in
     let a = Array.init universe (fun i -> i mod 2 = 0) in
     let b = Array.init universe (fun i -> i mod 3 = 0) in
     let gadget = Dsf_lower_bound.Gadgets.ic_gadget ~universe ~a ~b in
     let r = Recorder.create ~now:0 () in
     let tel = Telemetry.create ~clock:(fun () -> 0L) ~recorder:r () in
     let res =
       Dsf_core.Det_dsf.run ~flat:true ~telemetry:tel
         gadget.Dsf_lower_bound.Gadgets.ic
     in
     let inst = gadget.Dsf_lower_bound.Gadgets.ic in
     let n = Graph.n inst.Dsf_graph.Instance.graph in
     Recorder.meta_add r "n" n;
     Recorder.meta_add r "D" 2;
     Recorder.meta_add r "s" 4;
     Recorder.meta_add r "t" 4;
     (res, Recorder.analyze (Result.get_ok (Recorder.parse (Recorder.to_string r)))))

let test_golden_summary () =
  let res, a = Lazy.force gadget_analysis in
  let got =
    Printf.sprintf "weight=%d rounds=%d runs=%d depth=%d"
      res.Dsf_core.Det_dsf.weight (Recorder.total_rounds a)
      (Recorder.run_count a) (Recorder.max_depth a)
  in
  check Alcotest.string "gadget summary"
    "weight=5 rounds=61 runs=12 depth=25" got

let test_golden_why () =
  let _, a = Lazy.force gadget_analysis in
  let out = Format.asprintf "%a" (Recorder.pp_why ~node:0 ?round:None) a in
  (* The backtrace's shape is pinned loosely — a step line for node 0, a
     delivery chain, and an origin — so inspector wording can evolve
     without re-pinning every byte, while a causality bug (wrong chain,
     empty chain) still fails. *)
  check Alcotest.bool "header pins the final state" true
    (contains out
       "why node 0 (as of global round 60): last state change at round 57, \
        causal depth 24");
  check Alcotest.bool "deepest hop pinned" true
    (contains out
       "r57    node 0 consumed 23-bit message from node 9 (sent r56, chain \
        depth 24)");
  check Alcotest.bool "chain reaches an origin step" true
    (contains out "origin: node 17 sent from its initial state (depth 0)")

let test_golden_critical_path () =
  let _, a = Lazy.force gadget_analysis in
  let out = Format.asprintf "%a" Recorder.pp_critical_path a in
  check Alcotest.bool "headline depth pinned" true
    (contains out "critical path: causal depth 25 over 61 global round(s), \
                   12 run(s)");
  check Alcotest.bool "deepest chain endpoint pinned" true
    (contains out "deepest chain ends at node 1, round 52");
  check Alcotest.bool "prints the paper bound" true
    (contains out "paper bound");
  check Alcotest.bool "span attribution covers the solve phases" true
    (List.for_all
       (fun affix -> contains out affix)
       [ "minimalize"; "setup"; "phase/broadcast"; "final" ])

let suites =
  [
    ( "recorder",
      [
        Alcotest.test_case "binary round-trip" `Quick test_roundtrip;
        Alcotest.test_case "negative meta rejected" `Quick
          test_negative_meta_rejected;
        Alcotest.test_case "corrupt log rejected" `Quick test_corrupt_rejected;
        qtest prop_recorder_transparent;
        qtest prop_log_engine_invariant;
        Alcotest.test_case "crash plan: classic = flat bytes" `Quick
          test_log_crash_classic_flat_identical;
        qtest prop_log_jobs_invariant_faulted;
        Alcotest.test_case "spans in log, jobs-invariant" `Quick
          test_spans_in_log_jobs_invariant;
        Alcotest.test_case "golden: gadget summary" `Quick test_golden_summary;
        Alcotest.test_case "golden: gadget --why" `Quick test_golden_why;
        Alcotest.test_case "golden: gadget --critical-path" `Quick
          test_golden_critical_path;
      ] );
  ]
