let () =
  Alcotest.run "dsf"
    (Test_util.suites @ Test_graph.suites @ Test_congest.suites
   @ Test_core.suites @ Test_embed.suites @ Test_rand.suites
   @ Test_baseline.suites @ Test_lower_bound.suites @ Test_extras.suites
   @ Test_metamorphic.suites @ Test_pruning.suites @ Test_spanner.suites
   @ Test_mst_baselines.suites @ Test_differential.suites
   @ Test_sim_equiv.suites @ Test_chaos.suites @ Test_fuzz.suites
   @ Test_routing.suites @ Test_worked_examples.suites @ Test_misc.suites
   @ Test_parallel.suites @ Test_lint.suites @ Test_sanitizer.suites
   @ Test_telemetry.suites @ Test_recorder.suites)
