open Dsf_graph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

(* A diamond with a heavy direct edge: 0-1-3 (w 1+1) beats 0-3 (w 5);
   0-2-3 costs 2+2. *)
let diamond () =
  Graph.make ~n:4 [ 0, 1, 1; 1, 3, 1; 0, 2, 2; 2, 3, 2; 0, 3, 5 ]

(* ----------------------------------------------------------------- Graph *)

let test_graph_basic () =
  let g = diamond () in
  check Alcotest.int "n" 4 (Graph.n g);
  check Alcotest.int "m" 5 (Graph.m g);
  check Alcotest.int "degree 0" 3 (Graph.degree g 0);
  check Alcotest.int "max degree" 3 (Graph.max_degree g);
  check Alcotest.int "total weight" 11 (Graph.total_weight g);
  check Alcotest.int "max weight" 5 (Graph.max_weight g)

let test_graph_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.make: self-loop")
    (fun () -> ignore (Graph.make ~n:2 [ 0, 0, 1 ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.make: duplicate edge") (fun () ->
      ignore (Graph.make ~n:2 [ 0, 1, 1; 1, 0, 2 ]));
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Graph.make: non-positive weight") (fun () ->
      ignore (Graph.make ~n:2 [ 0, 1, 0 ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.make: endpoint out of range") (fun () ->
      ignore (Graph.make ~n:2 [ 0, 2, 1 ]))

let test_graph_edges () =
  let g = diamond () in
  (match Graph.find_edge g 0 3 with
  | Some id ->
      let u, v = Graph.endpoints g id in
      Alcotest.(check bool) "endpoints" true ((u, v) = (0, 3) || (u, v) = (3, 0));
      check Alcotest.int "other endpoint" 3 (Graph.other_endpoint g ~eid:id 0)
  | None -> Alcotest.fail "edge 0-3 should exist");
  check Alcotest.(option int) "absent edge" None (Graph.find_edge g 1 2)

let test_graph_connectivity () =
  Alcotest.(check bool) "diamond connected" true (Graph.is_connected (diamond ()));
  let g = Graph.make ~n:4 [ 0, 1, 1; 2, 3, 1 ] in
  Alcotest.(check bool) "two components" false (Graph.is_connected g);
  let comp = Graph.connected_components g in
  Alcotest.(check bool) "0~1" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "0!~2" false (comp.(0) = comp.(2))

let test_edge_set_weight () =
  let g = diamond () in
  let f = Array.make (Graph.m g) false in
  f.(0) <- true;
  f.(1) <- true;
  check Alcotest.int "selected weight" 2 (Graph.edge_set_weight g f);
  check Alcotest.int "selected edges" 2 (List.length (Graph.edge_list_of_set g f))

(* ------------------------------------------------------------------- CSR *)

(* Checks every CSR invariant the flat simulator engine relies on:
   position/adj alignment, offset monotonicity, twin involution across the
   edge direction, and the sorted index behind [csr_pos]. *)
let csr_consistent g =
  let open Graph in
  let c = csr g in
  let n = n g and m = m g in
  let ok = ref true in
  let fail _why = ok := false in
  if Array.length c.off <> n + 1 || c.off.(0) <> 0 || c.off.(n) <> 2 * m then
    fail "offsets";
  for v = 0 to n - 1 do
    let row = adj g v in
    if c.off.(v + 1) - c.off.(v) <> Array.length row then fail "row length";
    Array.iteri
      (fun i (nb, w, id) ->
        let p = c.off.(v) + i in
        if c.dst.(p) <> nb || c.wgt.(p) <> w || c.eid.(p) <> id then
          fail "adj alignment";
        let t = c.twin.(p) in
        if c.eid.(t) <> id || c.dst.(t) <> v || c.twin.(t) <> p then
          fail "twin involution";
        if csr_pos g ~src:v ~dst:nb <> p then fail "csr_pos roundtrip")
      row;
    (* srt row sorted strictly by neighbor id. *)
    for i = c.off.(v) + 1 to c.off.(v + 1) - 1 do
      if c.dst.(c.srt.(i - 1)) >= c.dst.(c.srt.(i)) then fail "srt order"
    done
  done;
  (* Absent edges resolve to -1. *)
  for v = 0 to n - 1 do
    let row = adj g v in
    let nbrs = Array.to_list row |> List.map (fun (nb, _, _) -> nb) in
    for u = 0 to n - 1 do
      if u <> v && not (List.mem u nbrs) then
        if csr_pos g ~src:v ~dst:u <> -1 then fail "phantom edge"
    done
  done;
  if csr_pos g ~src:(-1) ~dst:0 <> -1 || csr_pos g ~src:n ~dst:0 <> -1 then
    fail "out-of-range src";
  !ok

let test_csr_diamond () =
  Alcotest.(check bool) "csr invariants" true (csr_consistent (diamond ()))

let test_make_arr_equiv () =
  let triples = [ 0, 1, 1; 1, 3, 1; 0, 2, 2; 2, 3, 2; 0, 3, 5 ] in
  let gl = Graph.make ~n:4 triples in
  let ga = Graph.make_arr ~n:4 (Array.of_list triples) in
  check Alcotest.int "same m" (Graph.m gl) (Graph.m ga);
  Array.iteri
    (fun id (e : Graph.edge) ->
      let e' = Graph.edge ga id in
      Alcotest.(check bool) "same edge" true
        (e.u = e'.u && e.v = e'.v && e.w = e'.w && e.id = e'.id))
    (Graph.edges gl);
  Alcotest.check_raises "make_arr validates too"
    (Invalid_argument "Graph.make: duplicate edge") (fun () ->
      ignore (Graph.make_arr ~n:2 [| 0, 1, 1; 1, 0, 2 |]))

let test_csr_memo_reuse () =
  (* The CSR view is built once and memoized on the graph: every force
     returns the same physical value, including the one [find_edge] and
     [csr_pos] take, so hot loops can hoist [Graph.csr g] and index
     [Graph.pos] without re-deriving anything. *)
  let g = diamond () in
  let c1 = Graph.csr g in
  Alcotest.(check bool) "build-once: same physical CSR" true
    (c1 == Graph.csr g);
  ignore (Graph.find_edge g 0 1);
  Alcotest.(check bool) "find_edge reuses the memo" true (Graph.csr g == c1);
  Alcotest.(check bool) "pos on the memo = csr_pos on the graph" true
    (Graph.pos c1 ~src:0 ~dst:1 = Graph.csr_pos g ~src:0 ~dst:1)

let prop_csr_consistent =
  QCheck.Test.make ~name:"CSR invariants on random graphs" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Gen.random_connected (rng seed) ~n:25 ~extra_edges:20 ~max_w:9 in
      csr_consistent g)

(* ----------------------------------------------------------------- Paths *)

let test_dijkstra_diamond () =
  let g = diamond () in
  let dist, _ = Paths.dijkstra g ~src:0 in
  check Alcotest.(array int) "distances" [| 0; 1; 2; 2 |] dist

let test_dijkstra_prefers_fewer_hops () =
  (* Two shortest paths of weight 2 from 0 to 2: direct (1 hop) and via 1
     (2 hops); the hop count must be 1. *)
  let g = Graph.make ~n:3 [ 0, 1, 1; 1, 2, 1; 0, 2, 2 ] in
  let _, _, hops = Paths.dijkstra_hops g ~src:0 in
  check Alcotest.int "min hops among shortest" 1 hops.(2)

let test_shortest_path () =
  let g = diamond () in
  match Paths.shortest_path g ~src:0 ~dst:3 with
  | Some (nodes, w) ->
      check Alcotest.(list int) "path" [ 0; 1; 3 ] nodes;
      check Alcotest.int "weight" 2 w;
      check Alcotest.int "edges" 2 (List.length (Paths.path_edges g nodes))
  | None -> Alcotest.fail "path should exist"

let test_bfs () =
  let g = Gen.path 5 in
  let dist, parent = Paths.bfs g ~src:0 in
  check Alcotest.(array int) "bfs dist" [| 0; 1; 2; 3; 4 |] dist;
  check Alcotest.int "parent of 4" 3 parent.(4)

let test_bfs_multi () =
  let g = Gen.path 5 in
  let dist = Paths.bfs_multi g ~srcs:[ 0; 4 ] in
  check Alcotest.(array int) "multi-source" [| 0; 1; 2; 1; 0 |] dist

let test_parameters_path () =
  let g = Gen.path 6 in
  let d, wd, s = Paths.parameters g in
  check Alcotest.int "D" 5 d;
  check Alcotest.int "WD" 5 wd;
  check Alcotest.int "s" 5 s

let test_parameters_weighted_cycle () =
  (* Cycle of 4 with one heavy edge: shortest paths avoid it. *)
  let g = Graph.make ~n:4 [ 0, 1, 1; 1, 2, 1; 2, 3, 1; 3, 0, 10 ] in
  let d, wd, s = Paths.parameters g in
  check Alcotest.int "D" 2 d;
  check Alcotest.int "WD" 3 wd;
  (* 0 to 3 must go 0-1-2-3: 3 hops. *)
  check Alcotest.int "s" 3 s

let test_s_vs_d_gap () =
  (* Lollipop-ish: s can exceed D in weighted graphs; here a heavy shortcut
     keeps D low while weighted shortest paths take the long way. *)
  let n = 10 in
  let edges =
    List.init (n - 1) (fun i -> i, i + 1, 1) @ [ 0, n - 1, 100 ]
  in
  let g = Graph.make ~n edges in
  let d, _, s = Paths.parameters g in
  check Alcotest.int "D small" 1 (Paths.bfs g ~src:0 |> fun (dist, _) -> dist.(n - 1));
  Alcotest.(check bool) "s > D" true (s > d)

let prop_dijkstra_triangle =
  QCheck.Test.make ~name:"dijkstra satisfies triangle inequality" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Gen.random_connected (rng seed) ~n:20 ~extra_edges:20 ~max_w:10 in
      let apsp = Paths.all_pairs g in
      let ok = ref true in
      for u = 0 to 19 do
        for v = 0 to 19 do
          for w = 0 to 19 do
            if apsp.(u).(v) > apsp.(u).(w) + apsp.(w).(v) then ok := false
          done
        done
      done;
      !ok)

let prop_dijkstra_edge_bound =
  QCheck.Test.make ~name:"dijkstra distances respect every edge" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Gen.random_connected (rng seed) ~n:25 ~extra_edges:15 ~max_w:9 in
      let dist, _ = Paths.dijkstra g ~src:0 in
      Array.for_all
        (fun (e : Graph.edge) ->
          dist.(e.u) <= dist.(e.v) + e.w && dist.(e.v) <= dist.(e.u) + e.w)
        (Graph.edges g))

(* ------------------------------------------------------------------- Gen *)

let test_gen_shapes () =
  check Alcotest.int "path edges" 4 (Graph.m (Gen.path 5));
  check Alcotest.int "cycle edges" 5 (Graph.m (Gen.cycle 5));
  check Alcotest.int "star edges" 5 (Graph.m (Gen.star 6));
  check Alcotest.int "complete edges" 10 (Graph.m (Gen.complete 5));
  check Alcotest.int "grid edges" 12 (Graph.m (Gen.grid ~rows:3 ~cols:3));
  check Alcotest.int "tree edges" 9 (Graph.m (Gen.binary_tree 10));
  Alcotest.(check bool) "tree connected" true (Graph.is_connected (Gen.binary_tree 10))

let test_gen_lollipop () =
  let g = Gen.lollipop ~clique:4 ~tail:3 in
  check Alcotest.int "n" 7 (Graph.n g);
  check Alcotest.int "m" 9 (Graph.m g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_gen_random_connected () =
  let g = Gen.random_connected (rng 5) ~n:50 ~extra_edges:30 ~max_w:20 in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  check Alcotest.int "n" 50 (Graph.n g);
  Alcotest.(check bool) "enough edges" true (Graph.m g >= 49);
  Alcotest.(check bool) "weights in range" true
    (Array.for_all
       (fun (e : Graph.edge) -> e.w >= 1 && e.w <= 20)
       (Graph.edges g))

let test_gen_geometric () =
  let g = Gen.random_geometric (rng 11) ~n:40 ~radius:0.25 ~max_w:100 in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  check Alcotest.int "n" 40 (Graph.n g)

let test_gen_labels () =
  let labels = Gen.random_labels (rng 2) ~n:30 ~t:10 ~k:3 in
  let counts = Array.make 3 0 in
  let terminals = ref 0 in
  Array.iter
    (fun l ->
      if l >= 0 then begin
        incr terminals;
        counts.(l) <- counts.(l) + 1
      end)
    labels;
  check Alcotest.int "t terminals" 10 !terminals;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "component %d has >= 2" i) true (c >= 2))
    counts

let test_gen_spread_labels () =
  let g = Gen.grid ~rows:6 ~cols:6 in
  let labels = Gen.spread_labels (rng 9) g ~t:12 ~k:4 in
  let counts = Array.make 4 0 in
  Array.iter (fun l -> if l >= 0 then counts.(l) <- counts.(l) + 1) labels;
  Array.iter
    (fun c -> Alcotest.(check bool) "each component >= 2" true (c >= 2))
    counts

(* -------------------------------------------------------------- Instance *)

let instance_of_labels g labels = Instance.make_ic g (Array.of_list labels)

let test_instance_counts () =
  let g = Gen.path 6 in
  let inst = instance_of_labels g [ 0; -1; 0; 1; -1; 1 ] in
  check Alcotest.int "t" 4 (Instance.terminal_count inst);
  check Alcotest.int "k" 2 (Instance.component_count inst);
  check Alcotest.int "k0" 2 (Instance.nontrivial_component_count inst)

let test_instance_minimalize () =
  let g = Gen.path 4 in
  let inst = instance_of_labels g [ 0; 1; -1; 0 ] in
  check Alcotest.int "k before" 2 (Instance.component_count inst);
  let m = Instance.minimalize inst in
  check Alcotest.int "k after" 1 (Instance.component_count m);
  check Alcotest.int "k0 unchanged" 1 (Instance.nontrivial_component_count m)

let test_instance_feasible () =
  let g = Gen.path 4 in
  let inst = instance_of_labels g [ 0; -1; -1; 0 ] in
  let f = Array.make (Graph.m g) true in
  Alcotest.(check bool) "full set feasible" true (Instance.is_feasible inst f);
  let f2 = Array.make (Graph.m g) false in
  Alcotest.(check bool) "empty infeasible" false (Instance.is_feasible inst f2)

let test_instance_cr_to_ic () =
  let g = Gen.path 5 in
  let requests = Array.make 5 [] in
  requests.(0) <- [ 2 ];
  requests.(2) <- [ 4 ];
  let cr = Instance.make_cr g requests in
  let inst = Instance.ic_of_cr cr in
  (* transitivity: 0, 2, 4 all in one input component *)
  check Alcotest.int "k" 1 (Instance.component_count inst);
  check Alcotest.int "t" 3 (Instance.terminal_count inst);
  Alcotest.(check bool) "same label" true
    (inst.Instance.labels.(0) = inst.Instance.labels.(4))

let test_cr_feasibility () =
  let g = Gen.path 5 in
  let requests = Array.make 5 [] in
  requests.(0) <- [ 4 ];
  let cr = Instance.make_cr g requests in
  let f = Array.make (Graph.m g) true in
  Alcotest.(check bool) "feasible" true (Instance.cr_is_feasible cr f);
  f.(2) <- false;
  Alcotest.(check bool) "broken path" false (Instance.cr_is_feasible cr f)

let test_prune_removes_dangling () =
  (* Path 0-1-2-3-4, terminals {0, 2} same label; the full path is a
     feasible forest but edges 2-3, 3-4 are useless. *)
  let g = Gen.path 5 in
  let inst = instance_of_labels g [ 0; -1; 0; -1; -1 ] in
  let f = Array.make (Graph.m g) true in
  let pruned = Instance.prune inst f in
  check Alcotest.int "pruned weight" 2 (Instance.solution_weight inst pruned);
  Alcotest.(check bool) "still feasible" true (Instance.is_feasible inst pruned)

let test_prune_keeps_steiner_node () =
  (* Star with hub 0: terminals at three leaves, one label.  All three
     spokes needed. *)
  let g = Gen.star 5 in
  let inst = instance_of_labels g [ -1; 0; 0; 0; -1 ] in
  let f = Array.make (Graph.m g) false in
  List.iter (fun (u, v) ->
      match Graph.find_edge g u v with
      | Some id -> f.(id) <- true
      | None -> assert false)
    [ 0, 1; 0, 2; 0, 3; 0, 4 ];
  let pruned = Instance.prune inst f in
  check Alcotest.int "keeps 3 spokes" 3 (Instance.solution_weight inst pruned);
  Alcotest.(check bool) "feasible" true (Instance.is_feasible inst pruned)

let test_prune_two_components () =
  (* Two separate labels on a path; pruning keeps both segments. *)
  let g = Gen.path 6 in
  let inst = instance_of_labels g [ 0; 0; -1; -1; 1; 1 ] in
  let f = Array.make (Graph.m g) true in
  let pruned = Instance.prune inst f in
  check Alcotest.int "weight" 2 (Instance.solution_weight inst pruned)

let prop_prune_minimal_and_feasible =
  QCheck.Test.make
    ~name:"prune yields feasible subforest; every edge necessary" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let r = rng seed in
      let g = Gen.random_connected r ~n:15 ~extra_edges:10 ~max_w:5 in
      let labels = Gen.random_labels r ~n:15 ~t:6 ~k:2 in
      let inst = Instance.make_ic g labels in
      (* Start from a spanning tree (always a feasible forest). *)
      let f = Mst.kruskal g in
      let pruned = Instance.prune inst f in
      if not (Instance.is_feasible inst pruned) then false
      else begin
        (* Removing any kept edge must break feasibility. *)
        let ok = ref true in
        Array.iteri
          (fun id kept ->
            if kept then begin
              let f' = Array.copy pruned in
              f'.(id) <- false;
              if Instance.is_feasible inst f' then ok := false
            end)
          pruned;
        !ok
      end)

(* ------------------------------------------------------------------- Mst *)

let test_kruskal_diamond () =
  let g = diamond () in
  let f = Mst.kruskal g in
  check Alcotest.int "mst weight" 4 (Graph.edge_set_weight g f);
  Alcotest.(check bool) "spanning tree" true (Mst.is_spanning_tree g f)

let test_kruskal_path () =
  let g = Gen.path 7 in
  check Alcotest.int "path mst weight" 6 (Mst.weight g)

let prop_kruskal_spanning =
  QCheck.Test.make ~name:"kruskal yields a spanning tree" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Gen.random_connected (rng seed) ~n:30 ~extra_edges:40 ~max_w:50 in
      Mst.is_spanning_tree g (Mst.kruskal g))

let prop_kruskal_cut_property =
  QCheck.Test.make
    ~name:"no single-edge swap improves kruskal weight" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Gen.random_connected (rng seed) ~n:12 ~extra_edges:12 ~max_w:30 in
      let f = Mst.kruskal g in
      let base = Graph.edge_set_weight g f in
      (* For every non-tree edge e and tree edge x on the induced cycle,
         swapping cannot beat base.  Cheap version: adding e and removing any
         tree edge never improves. *)
      let ok = ref true in
      Array.iter
        (fun (e : Graph.edge) ->
          if not f.(e.id) then
            Array.iter
              (fun (x : Graph.edge) ->
                if f.(x.id) then begin
                  let f' = Array.copy f in
                  f'.(e.id) <- true;
                  f'.(x.id) <- false;
                  if
                    Mst.is_spanning_tree g f'
                    && Graph.edge_set_weight g f' < base
                  then ok := false
                end)
              (Graph.edges g))
        (Graph.edges g);
      !ok)

(* ----------------------------------------------------------------- Exact *)

let test_partitions_bell () =
  check Alcotest.int "bell 1" 1 (List.length (Exact.partitions [ 1 ]));
  check Alcotest.int "bell 2" 2 (List.length (Exact.partitions [ 1; 2 ]));
  check Alcotest.int "bell 3" 5 (List.length (Exact.partitions [ 1; 2; 3 ]));
  check Alcotest.int "bell 4" 15 (List.length (Exact.partitions [ 1; 2; 3; 4 ]))

let test_steiner_tree_two_terminals () =
  let g = diamond () in
  check Alcotest.int "st = shortest path" 2 (Exact.steiner_tree_weight g [ 0; 3 ])

let test_steiner_tree_star () =
  (* Star hub 0 with unit spokes; terminals three leaves: weight 3 via hub. *)
  let g = Gen.star 5 in
  check Alcotest.int "hub tree" 3 (Exact.steiner_tree_weight g [ 1; 2; 3 ])

let test_steiner_tree_single () =
  let g = diamond () in
  check Alcotest.int "single terminal" 0 (Exact.steiner_tree_weight g [ 2 ]);
  check Alcotest.int "no terminal" 0 (Exact.steiner_tree_weight g [])

let test_steiner_forest_separate_cheaper () =
  (* Two far-apart pairs: forest with two trees beats one spanning tree.
     Path 0-1-2-3 with heavy middle edge; labels {0,1} and {2,3}. *)
  let g = Graph.make ~n:4 [ 0, 1, 1; 1, 2, 100; 2, 3, 1 ] in
  let inst = Instance.make_ic g [| 0; 0; 1; 1 |] in
  check Alcotest.int "two trees" 2 (Exact.steiner_forest_weight inst)

let test_steiner_forest_sharing_cheaper () =
  (* Sharing a Steiner node is cheaper than separate trees.
     Spider: hub 0, legs to 1,2,3,4 of weight 1; labels {1,2} and {3,4}.
     Separate trees: (1-0-2) = 2 and (3-0-4) = 2 -> total 4 but they share
     hub edges?  They are disjoint trees needing edges 01,02 and 03,04:
     total 4.  Optimal = 4. Sanity-check the partition enumeration agrees. *)
  let g = Gen.star 5 in
  let inst = Instance.make_ic g [| -1; 0; 0; 1; 1 |] in
  check Alcotest.int "forest weight" 4 (Exact.steiner_forest_weight inst)

let test_steiner_forest_vs_mst_k1 () =
  (* k=1 with all nodes terminals = spanning tree: exact forest = MST. *)
  let g = Gen.random_connected (rng 77) ~n:8 ~extra_edges:8 ~max_w:10 in
  let inst = Instance.make_ic g (Array.make 8 0) in
  check Alcotest.int "equals MST" (Mst.weight g) (Exact.steiner_forest_weight inst)

let prop_exact_st_between_bounds =
  QCheck.Test.make
    ~name:"steiner tree weight between max pair distance and MST" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let r = rng seed in
      let g = Gen.random_connected r ~n:12 ~extra_edges:10 ~max_w:10 in
      let terms =
        Dsf_util.Rng.sample_without_replacement r 4 12 |> Array.to_list
      in
      let w = Exact.steiner_tree_weight g terms in
      let apsp = Paths.all_pairs g in
      let max_pair =
        List.fold_left
          (fun acc u ->
            List.fold_left (fun acc v -> max acc apsp.(u).(v)) acc terms)
          0 terms
      in
      w >= max_pair && w <= Mst.weight g)

let suites =
  [
    ( "graph.graph",
      [
        Alcotest.test_case "basic accessors" `Quick test_graph_basic;
        Alcotest.test_case "validation" `Quick test_graph_validation;
        Alcotest.test_case "edge lookup" `Quick test_graph_edges;
        Alcotest.test_case "connectivity" `Quick test_graph_connectivity;
        Alcotest.test_case "edge set weight" `Quick test_edge_set_weight;
        Alcotest.test_case "csr diamond" `Quick test_csr_diamond;
        Alcotest.test_case "make_arr equivalence" `Quick test_make_arr_equiv;
        Alcotest.test_case "csr memo reuse" `Quick test_csr_memo_reuse;
        qtest prop_csr_consistent;
      ] );
    ( "graph.paths",
      [
        Alcotest.test_case "dijkstra diamond" `Quick test_dijkstra_diamond;
        Alcotest.test_case "fewest hops tie-break" `Quick test_dijkstra_prefers_fewer_hops;
        Alcotest.test_case "shortest path extraction" `Quick test_shortest_path;
        Alcotest.test_case "bfs" `Quick test_bfs;
        Alcotest.test_case "bfs multi-source" `Quick test_bfs_multi;
        Alcotest.test_case "parameters of a path" `Quick test_parameters_path;
        Alcotest.test_case "parameters weighted cycle" `Quick test_parameters_weighted_cycle;
        Alcotest.test_case "s exceeds D" `Quick test_s_vs_d_gap;
        qtest prop_dijkstra_triangle;
        qtest prop_dijkstra_edge_bound;
      ] );
    ( "graph.gen",
      [
        Alcotest.test_case "fixed shapes" `Quick test_gen_shapes;
        Alcotest.test_case "lollipop" `Quick test_gen_lollipop;
        Alcotest.test_case "random connected" `Quick test_gen_random_connected;
        Alcotest.test_case "random geometric" `Quick test_gen_geometric;
        Alcotest.test_case "random labels" `Quick test_gen_labels;
        Alcotest.test_case "spread labels" `Quick test_gen_spread_labels;
      ] );
    ( "graph.instance",
      [
        Alcotest.test_case "t/k/k0 counts" `Quick test_instance_counts;
        Alcotest.test_case "minimalize" `Quick test_instance_minimalize;
        Alcotest.test_case "feasibility" `Quick test_instance_feasible;
        Alcotest.test_case "CR to IC (Lemma 2.3)" `Quick test_instance_cr_to_ic;
        Alcotest.test_case "CR feasibility" `Quick test_cr_feasibility;
        Alcotest.test_case "prune dangling path" `Quick test_prune_removes_dangling;
        Alcotest.test_case "prune keeps steiner node" `Quick test_prune_keeps_steiner_node;
        Alcotest.test_case "prune two components" `Quick test_prune_two_components;
        qtest prop_prune_minimal_and_feasible;
      ] );
    ( "graph.mst",
      [
        Alcotest.test_case "kruskal diamond" `Quick test_kruskal_diamond;
        Alcotest.test_case "kruskal path" `Quick test_kruskal_path;
        qtest prop_kruskal_spanning;
        qtest prop_kruskal_cut_property;
      ] );
    ( "graph.exact",
      [
        Alcotest.test_case "bell numbers" `Quick test_partitions_bell;
        Alcotest.test_case "ST two terminals" `Quick test_steiner_tree_two_terminals;
        Alcotest.test_case "ST star" `Quick test_steiner_tree_star;
        Alcotest.test_case "ST degenerate" `Quick test_steiner_tree_single;
        Alcotest.test_case "SF separate trees" `Quick test_steiner_forest_separate_cheaper;
        Alcotest.test_case "SF spider" `Quick test_steiner_forest_sharing_cheaper;
        Alcotest.test_case "SF k=1 all-terminals = MST" `Quick test_steiner_forest_vs_mst_k1;
        qtest prop_exact_st_between_bounds;
      ] );
  ]
