(* dsf-lint: every rule must fire on a minimal bad fixture and stay quiet
   on the corresponding good one, each suppression form must silence
   exactly the named rule, and the baseline must grandfather findings by
   (file, rule, message) while flagging stale entries. *)

open Dsf_lint

let check = Alcotest.check

(* Lint [src] as if it lived at [file]; return the rule ids that fired. *)
let rules_of ~file src =
  match Lint.check_string ~file src with
  | Ok findings -> List.map (fun (f : Finding.t) -> f.Finding.rule) findings
  | Error e -> Alcotest.failf "unexpected parse error for %s: %s" file e

let fires ~file rule src =
  check Alcotest.bool
    (Printf.sprintf "%s fires in %s" rule file)
    true
    (List.mem rule (rules_of ~file src))

let quiet ~file src =
  check Alcotest.(list string)
    (Printf.sprintf "quiet in %s" file)
    [] (rules_of ~file src)

(* ----------------------------------------------------------- global-state *)

let test_global_state () =
  fires ~file:"lib/core/bad.ml" "global-state" "let cache = Hashtbl.create 16";
  fires ~file:"lib/core/bad.ml" "global-state" "let counter = ref 0";
  fires ~file:"lib/core/bad.ml" "global-state" "let buf = Buffer.create 64";
  fires ~file:"lib/core/bad.ml" "global-state" "let flag = Atomic.make false";
  fires ~file:"lib/core/bad.ml" "global-state" "let table = [| 1; 2; 3 |]";
  fires ~file:"lib/core/bad.ml" "global-state"
    "let state : int ref = ref 0";
  (* mutable record fields at toplevel *)
  fires ~file:"lib/core/bad.ml" "global-state"
    "type t = { mutable n : int }\nlet shared = { n = 0 }";
  (* allocation inside a function is per-call, not shared *)
  quiet ~file:"lib/core/good.ml" "let fresh () = ref 0";
  quiet ~file:"lib/core/good.ml"
    "let count xs = let h = Hashtbl.create 8 in List.length xs + Hashtbl.length h";
  (* immutable toplevel data is fine *)
  quiet ~file:"lib/core/good.ml" "let palette = [ \"red\"; \"blue\" ]";
  (* the rule is scoped to lib/: executables and tests may keep state *)
  quiet ~file:"bin/tool.ml" "let verbose = ref false";
  quiet ~file:"test/test_x.ml" "let seen = Hashtbl.create 16";
  quiet ~file:"bench/micro.ml" "let acc = ref 0"

(* ------------------------------------------------------------ sim-globals *)

let test_sim_globals () =
  fires ~file:"lib/core/bad.ml" "sim-globals"
    "let go obs = Sim.set_observer (Some obs)";
  fires ~file:"lib/core/bad.ml" "sim-globals"
    "let go obs f = Dsf_congest.Sim.with_observer obs f";
  fires ~file:"bench/bad.ml" "sim-globals"
    "let slow () = Sim.use_reference_engine := true";
  fires ~file:"bench/bad.ml" "sim-globals"
    "let fast () = Sim.use_flat_engine := true";
  (* the differential suites are the allowlisted consumers of the shims *)
  quiet ~file:"test/test_sim_equiv.ml"
    "let go obs f = Sim.with_observer obs f";
  quiet ~file:"lib/congest/sim.ml"
    "let go obs f = Sim.with_observer obs f";
  (* same function names on other modules are unrelated *)
  quiet ~file:"lib/core/good.ml"
    "let go obs = Registry.set_observer obs"

(* ----------------------------------------------------------------- nondet *)

let test_nondet () =
  fires ~file:"lib/core/bad.ml" "nondet" "let () = Random.self_init ()";
  fires ~file:"test/test_x.ml" "nondet" "let () = Random.self_init ()";
  fires ~file:"lib/core/bad.ml" "nondet" "let roll () = Random.int 6";
  fires ~file:"lib/core/bad.ml" "nondet" "let now () = Unix.gettimeofday ()";
  fires ~file:"bin/tool.ml" "nondet" "let now () = Sys.time ()";
  fires ~file:"lib/core/bad.ml" "nondet" "let me () = Domain.self ()";
  (* seeded state threading is the sanctioned way to use randomness *)
  quiet ~file:"lib/core/good.ml"
    "let roll st = Random.State.int st 6";
  (* benches may read the wall clock and use the global RNG *)
  quiet ~file:"bench/micro.ml" "let now () = Unix.gettimeofday ()";
  quiet ~file:"bench/micro.ml" "let roll () = Random.int 6";
  (* telemetry.ml and recorder.ml are the sanctioned lib/ clocks (span
     timing, flightlog header stamp); every other library file must
     profile through them — locked both ways so widening the allowlist
     is a deliberate act *)
  quiet ~file:"lib/congest/telemetry.ml"
    "let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)";
  quiet ~file:"lib/congest/recorder.ml"
    "let now_unix_s () = int_of_float (Unix.gettimeofday ())";
  fires ~file:"lib/congest/trace.ml" "nondet"
    "let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)";
  fires ~file:"lib/congest/sim.ml" "nondet"
    "let now_unix_s () = int_of_float (Unix.gettimeofday ())"

(* ----------------------------------------------- congest-discipline *)

let test_congest_discipline () =
  fires ~file:"lib/core/bad.ml" "congest-discipline"
    "let tick proto view st inbox = proto.Sim.step view st ~inbox";
  fires ~file:"lib/core/bad.ml" "congest-discipline"
    "let clear st = st.inbox <- []";
  fires ~file:"lib/core/bad.ml" "congest-discipline"
    "let push st m = st.outbox <- m :: st.outbox";
  (* the simulator itself is the one place allowed to drive [step] *)
  quiet ~file:"lib/congest/sim.ml"
    "let tick proto view st inbox = proto.Sim.step view st ~inbox";
  (* unrelated fields and functions stay quiet *)
  quiet ~file:"lib/core/good.ml" "let clear st = st.items <- []";
  quiet ~file:"lib/core/good.ml" "let tick m = m.advance ()"

(* -------------------------------------------------------------- catch-all *)

let test_catch_all () =
  fires ~file:"lib/core/bad.ml" "catch-all"
    "let safe f = try f () with _ -> ()";
  fires ~file:"lib/core/bad.ml" "catch-all"
    "let safe f = try f () with e -> ignore e";
  fires ~file:"lib/core/bad.ml" "catch-all"
    "let safe f = match f () with x -> x | exception _ -> 0";
  (* naming the exceptions you mean to swallow is fine *)
  quiet ~file:"lib/core/good.ml"
    "let safe f = try f () with Not_found -> ()";
  quiet ~file:"lib/core/good.ml"
    "let safe f = try f () with Failure _ | Not_found -> ()";
  (* binding in order to re-raise is the sanctioned firewall idiom *)
  quiet ~file:"lib/core/good.ml"
    "let safe f = try f () with e -> cleanup (); raise e";
  quiet ~file:"lib/core/good.ml"
    "let safe f = try f () with e -> \
     Printexc.raise_with_backtrace e (Printexc.get_raw_backtrace ())";
  (* the crash-recovery contract (Fault.recoverable) is explicitly in
     scope: a catch-all inside a snapshot/restore implementation would
     turn a failing checkpoint into silent state corruption, and the rule
     must fire there like anywhere else in lib/ *)
  fires ~file:"lib/congest/fault.ml" "catch-all"
    "let r = { snapshot = (fun st -> try copy st with _ -> st); \
     state_bits = (fun _ -> 63) }";
  fires ~file:"lib/core/my_proto.ml" "catch-all"
    "let snapshot st = try deep_copy st with _ -> st"

(* ----------------------------------------------------------- unsafe-array *)

let test_unsafe_array () =
  fires ~file:"lib/core/bad.ml" "unsafe-array"
    "let get a i = Array.unsafe_get a i";
  fires ~file:"lib/core/bad.ml" "unsafe-array"
    "let set a i v = Array.unsafe_set a i v";
  fires ~file:"lib/core/bad.ml" "unsafe-array"
    "let byte b i = Bytes.unsafe_get b i";
  fires ~file:"lib/core/bad.ml" "unsafe-array"
    "let ch s i = String.unsafe_get s i";
  (* unsafe access is a hazard in every zone, not just lib/ *)
  fires ~file:"bench/micro.ml" "unsafe-array"
    "let get a i = Array.unsafe_get a i";
  fires ~file:"test/test_x.ml" "unsafe-array"
    "let get a i = Array.unsafe_get a i";
  (* the simulator carries its allows inline, not via a file allowlist *)
  fires ~file:"lib/congest/sim.ml" "unsafe-array"
    "let get a i = Array.unsafe_get a i";
  quiet ~file:"lib/congest/sim.ml"
    "let get a i =\n\
    \  if i < 0 || i >= Array.length a then invalid_arg \"get\";\n\
    \  (Array.unsafe_get a i [@lint.allow \"unsafe-array\"])";
  (* checked accessors and unrelated unsafe_-named functions stay quiet *)
  quiet ~file:"lib/core/good.ml" "let get a i = Array.get a i";
  quiet ~file:"lib/core/good.ml" "let go x = Proto.unsafe_cast x";
  (* Dsf_util.Pack is the sanctioned bit-twiddling site: unchecked
     accessors there need no inline allow ... *)
  quiet ~file:"lib/util/pack.ml" "let get a i = Array.unsafe_get a i";
  (* ... but only there — the same code elsewhere in lib/ still fires *)
  fires ~file:"lib/util/bitsize.ml" "unsafe-array"
    "let get a i = Array.unsafe_get a i";
  fires ~file:"lib/congest/bfs.ml" "unsafe-array"
    "let get a i = Array.unsafe_get a i"

(* ------------------------------------------------- deprecated-fault-alias *)

let test_fault_alias () =
  fires ~file:"lib/core/bad.ml" "deprecated-fault-alias"
    "let classify p = Fault.drop_only p";
  (* deprecation is deprecation in every zone, tests included *)
  fires ~file:"test/test_x.ml" "deprecated-fault-alias"
    "let classify p = Dsf_congest.Fault.drop_only p";
  quiet ~file:"lib/core/good.ml" "let classify p = Fault.maskable p";
  (* the same name on an unrelated module stays quiet *)
  quiet ~file:"lib/core/good.ml" "let classify p = Filter.drop_only p";
  (* pinning the historical semantics under an explicit allow is fine *)
  quiet ~file:"test/test_x.ml"
    "let classify p = \
     (Fault.drop_only [@lint.allow \"deprecated-fault-alias\"]) p"

(* ------------------------------------------------------------ suppression *)

let test_suppression () =
  (* expression attribute *)
  quiet ~file:"lib/core/x.ml"
    "let safe f = (try f () with _ -> ()) [@lint.allow \"catch-all\"]";
  (* binding item attribute *)
  quiet ~file:"lib/core/x.ml"
    "let cache = Hashtbl.create 16 [@@lint.allow \"global-state\"]";
  (* floating attribute covers the rest of the module... *)
  quiet ~file:"lib/core/x.ml"
    "[@@@lint.allow \"global-state\"]\nlet a = ref 0\nlet b = ref 1";
  (* ...but not sites before it *)
  fires ~file:"lib/core/x.ml" "global-state"
    "let a = ref 0\n[@@@lint.allow \"global-state\"]\nlet b = ref 1";
  (* a suppression names its rule: others still fire *)
  fires ~file:"lib/core/x.ml" "global-state"
    "let cache = Hashtbl.create 16 [@@lint.allow \"catch-all\"]";
  (* several ids, space-separated *)
  quiet ~file:"lib/core/x.ml"
    "let cache = Hashtbl.create 16 [@@lint.allow \"catch-all global-state\"]";
  (* empty payload allows everything under the node *)
  quiet ~file:"lib/core/x.ml" "let cache = Hashtbl.create 16 [@@lint.allow]";
  (* the catch-all rule also honours an attribute on the handler pattern *)
  quiet ~file:"lib/core/x.ml"
    "let safe f = try f () with _ [@lint.allow \"catch-all\"] -> ()";
  quiet ~file:"lib/core/x.ml"
    "let safe f = match f () with x -> x \
     | exception (e [@lint.allow \"catch-all\"]) -> ignore e; 0"

(* ---------------------------------------------------------------- scoping *)

let test_zones_and_errors () =
  check Alcotest.bool "lib zone" true (Lint.zone_of_path "lib/core/x.ml" = Lint.Lib);
  check Alcotest.bool "bench zone" true (Lint.zone_of_path "bench/x.ml" = Lint.Bench);
  check Alcotest.bool "other zone" true (Lint.zone_of_path "examples/x.ml" = Lint.Other);
  (match Lint.check_string ~file:"lib/core/broken.ml" "let = 3 in" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse error expected");
  check Alcotest.int "rule catalogue" 7 (List.length Lint.rules);
  check Alcotest.int "typed rule catalogue" 2 (List.length Typed_lint.rules)

(* --------------------------------------------------------------- baseline *)

let test_baseline () =
  let f1 : Finding.t =
    { file = "lib/core/a.ml"; line = 3; col = 0; rule = "global-state";
      message = "toplevel mutable"; hint = "" }
  and f2 : Finding.t =
    { file = "lib/core/b.ml"; line = 9; col = 2; rule = "catch-all";
      message = "catch-all handler"; hint = "" }
  in
  let path = Filename.temp_file "dsf_lint_test" ".baseline" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Lint.Baseline.save path [ f1; f2 ];
  let entries = Lint.Baseline.load path in
  check Alcotest.int "roundtrip size" 2 (List.length entries);
  (* both covered: nothing kept, none stale *)
  let kept, n, stale = Lint.Baseline.apply entries [ f1; f2 ] in
  check Alcotest.int "kept" 0 (List.length kept);
  check Alcotest.int "suppressed" 2 n;
  check Alcotest.int "stale" 0 (List.length stale);
  (* matching ignores the line number: an edit above the site moves it *)
  let moved = { f1 with line = 40; col = 7 } in
  let kept, n, _ = Lint.Baseline.apply entries [ moved ] in
  check Alcotest.int "line-insensitive kept" 0 (List.length kept);
  check Alcotest.int "line-insensitive suppressed" 1 n;
  (* a fixed finding leaves its entry stale; a new one is kept *)
  let f3 = { f1 with file = "lib/core/c.ml" } in
  let kept, _, stale = Lint.Baseline.apply entries [ f1; f3 ] in
  check Alcotest.int "new finding kept" 1 (List.length kept);
  check Alcotest.int "fixed entry stale" 1 (List.length stale);
  check Alcotest.string "stale is f2" "lib/core/b.ml"
    (List.hd stale).Lint.Baseline.bfile;
  (* missing baseline file = empty *)
  check Alcotest.int "missing file" 0
    (List.length (Lint.Baseline.load "/nonexistent/dsf.baseline"))

(* The shipped tree must be lint-clean: the same invariant `dune build
   @lint` enforces in CI, checked here from the repo root when visible.
   (Alcotest may run from _build sandboxes without the sources; skip
   silently then.) *)
let test_repo_clean () =
  let root = ".." in
  if Sys.file_exists (Filename.concat root "lib") then begin
    let roots =
      List.filter
        (fun d -> Sys.file_exists (Filename.concat root d))
        [ "lib"; "bin"; "bench" ]
      |> List.map (Filename.concat root)
    in
    let findings, errors = Lint.scan ~roots in
    check Alcotest.(list string) "no scan errors" [] errors;
    List.iter (fun f -> Format.eprintf "%a@." Finding.pp f) findings;
    check Alcotest.int "repo findings" 0 (List.length findings)
  end

(* ------------------------------------------------------------ typed rules *)

(* The typed pass runs over .cmt artifacts, which live next to this test
   binary inside the build context (dune's dev profile emits -bin-annot).
   Linking dsf_lint_fixtures into test_main guarantees the fixture cmts
   exist whenever the tests run; outside the build tree the scans skip
   silently, like test_repo_clean. *)

let test_typed_fixtures () =
  let root = Filename.concat "fixtures" ".dsf_lint_fixtures.objs" in
  if Sys.file_exists root then begin
    let findings, errors = Typed_lint.scan ~roots:[ root ] in
    check Alcotest.(list string) "no scan errors" [] errors;
    let by rule =
      List.filter (fun (f : Finding.t) -> f.Finding.rule = rule) findings
    in
    let races = by "domain-race" and widths = by "congest-width" in
    (* racy_flat.ml seeds two distinct races: a toplevel ref and a write
       to another node's slot of the captured storage *)
    check Alcotest.bool "seeded cross-domain writes flagged" true
      (List.length races >= 2);
    check Alcotest.bool "race findings name racy_flat.ml" true
      (List.for_all
         (fun (f : Finding.t) -> Filename.basename f.Finding.file = "racy_flat.ml")
         races);
    (* wide_pack.ml seeds an 80-bit layout, an unverifiable width, and a
       200-bit fp_msg_bits *)
    check Alcotest.bool "over-wide fixtures flagged" true
      (List.length widths >= 3);
    check Alcotest.bool "width findings name wide_pack.ml" true
      (List.for_all
         (fun (f : Finding.t) -> Filename.basename f.Finding.file = "wide_pack.ml")
         widths);
    check Alcotest.int "no other rules fire" 0
      (List.length findings - List.length races - List.length widths);
    (* the scan output is already in Finding.compare order (stable CI) *)
    check Alcotest.bool "findings sorted" true
      (List.sort Finding.compare findings = findings)
  end

let test_typed_repo_clean () =
  let root = Filename.concat ".." "lib" in
  if Sys.file_exists root then begin
    let findings, errors = Typed_lint.scan ~roots:[ root ] in
    check Alcotest.(list string) "no scan errors" [] errors;
    List.iter (fun f -> Format.eprintf "%a@." Finding.pp f) findings;
    check Alcotest.int "typed findings on shipped libraries" 0
      (List.length findings)
  end

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "global-state" `Quick test_global_state;
        Alcotest.test_case "sim-globals" `Quick test_sim_globals;
        Alcotest.test_case "nondet" `Quick test_nondet;
        Alcotest.test_case "congest-discipline" `Quick test_congest_discipline;
        Alcotest.test_case "catch-all" `Quick test_catch_all;
        Alcotest.test_case "unsafe-array" `Quick test_unsafe_array;
        Alcotest.test_case "deprecated-fault-alias" `Quick test_fault_alias;
        Alcotest.test_case "suppression" `Quick test_suppression;
        Alcotest.test_case "zones and parse errors" `Quick test_zones_and_errors;
        Alcotest.test_case "baseline" `Quick test_baseline;
        Alcotest.test_case "repo is lint-clean" `Quick test_repo_clean;
        Alcotest.test_case "typed rules flag the fixtures" `Quick
          test_typed_fixtures;
        Alcotest.test_case "typed rules clean on shipped libs" `Quick
          test_typed_repo_clean;
      ] );
  ]
