open Dsf_graph
open Dsf_congest

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let rng seed = Dsf_util.Rng.create seed

(* ------------------------------------------------------------------- Sim *)

(* A trivial flooding protocol: node 0 floods a token; everyone records the
   round they first heard it.  Checks round accounting = BFS depth. *)
type flood_state = { heard : int option; relayed : bool }

let flood_protocol root : (flood_state, unit) Sim.protocol =
  {
    init =
      (fun view ->
        if view.Sim.node = root then { heard = Some 0; relayed = false }
        else { heard = None; relayed = false });
    step =
      (fun view ~round st ~inbox ->
        let st =
          match st.heard, inbox with
          | None, _ :: _ -> { st with heard = Some round }
          | _ -> st
        in
        if st.heard <> None && not st.relayed then
          ( { st with relayed = true },
            Array.to_list view.Sim.nbrs |> List.map (fun (nb, _, _) -> nb, ()) )
        else st, []);
    is_done = (fun st -> st.heard <> None && st.relayed);
    msg_bits = (fun () -> 1);
    wake = Some Sim.never;
  }

let test_sim_flood_rounds () =
  let g = Gen.path 6 in
  let states, stats = Sim.run g (flood_protocol 0) in
  Array.iteri
    (fun v st ->
      match st.heard with
      | Some r ->
          (* Node v hears the token in round v (delivery next round after
             send in round v-1). *)
          check Alcotest.int (Printf.sprintf "node %d heard at" v) v r
      | None -> Alcotest.fail "all nodes must hear the flood")
    states;
  Alcotest.(check bool) "rounds >= path length" true (stats.Sim.rounds >= 5)

let test_sim_rejects_non_neighbor () =
  let g = Gen.path 3 in
  let bad : (unit, unit) Sim.protocol =
    {
      init = (fun _ -> ());
      step =
        (fun view ~round st ~inbox:_ ->
          if view.Sim.node = 0 && round = 0 then st, [ 2, () ] else st, []);
      is_done = (fun () -> true);
      msg_bits = (fun () -> 1);
      wake = None;
    }
  in
  Alcotest.check_raises "non-neighbor send"
    (Invalid_argument "Sim.run: message to non-neighbor") (fun () ->
      ignore (Sim.run g bad))

let test_sim_round_limit () =
  let g = Gen.path 2 in
  let chatty : (unit, unit) Sim.protocol =
    {
      init = (fun _ -> ());
      step =
        (fun view ~round:_ st ~inbox:_ ->
          st, Array.to_list view.Sim.nbrs |> List.map (fun (nb, _, _) -> nb, ()));
      is_done = (fun () -> true);
      msg_bits = (fun () -> 1);
      wake = None;
    }
  in
  (match Sim.run ~max_rounds:10 g chatty with
  | exception Sim.Round_limit a ->
      check Alcotest.int "limit" 10 a.Sim.at_round;
      check Alcotest.int "snapshot rounds" 10 a.Sim.snapshot.Sim.rounds;
      Alcotest.(check bool)
        "post-mortem has traffic" true
        (a.Sim.recent <> [] && List.for_all (fun (_, l) -> l <> []) a.Sim.recent)
  | _ -> Alcotest.fail "expected Round_limit")

let test_sim_bit_accounting () =
  let g = Gen.path 2 in
  let once : (bool, unit) Sim.protocol =
    {
      init = (fun view -> view.Sim.node <> 0);
      step =
        (fun _view ~round:_ sent ~inbox:_ ->
          if not sent then true, [ 1, () ] else true, []);
      is_done = Fun.id;
      msg_bits = (fun () -> 7);
      wake = None;
    }
  in
  let _, stats = Sim.run g once in
  check Alcotest.int "one message" 1 stats.Sim.messages;
  check Alcotest.int "seven bits" 7 stats.Sim.total_bits;
  check Alcotest.int "max edge-round bits" 7 stats.Sim.max_edge_round_bits;
  check Alcotest.int "no violations" 0 stats.Sim.budget_violations

(* ---------------------------------------------------------------- Ledger *)

let test_ledger () =
  let l = Ledger.create () in
  Ledger.add l Ledger.Simulated "bfs" 10;
  Ledger.add l Ledger.Charged "black box" 5;
  Ledger.add l Ledger.Simulated "voronoi" 7;
  check Alcotest.int "simulated" 17 (Ledger.simulated l);
  check Alcotest.int "charged" 5 (Ledger.charged l);
  check Alcotest.int "total" 22 (Ledger.total l);
  check Alcotest.int "entries" 3 (List.length (Ledger.entries l));
  let l2 = Ledger.create () in
  Ledger.merge_into ~dst:l2 l;
  check Alcotest.int "merged total" 22 (Ledger.total l2)

(* ------------------------------------------------------------------- Bfs *)

let test_bfs_tree_depths () =
  let g = Gen.grid ~rows:4 ~cols:4 in
  let tree, _ = Bfs.build g ~root:0 in
  let dist, _ = Paths.bfs g ~src:0 in
  check Alcotest.(array int) "depths = BFS distances" dist tree.Bfs.depth;
  check Alcotest.int "height = ecc(root)" (Paths.eccentricity_unweighted g 0)
    tree.Bfs.height

let test_bfs_tree_parents_consistent () =
  let g = Gen.random_connected (rng 1) ~n:40 ~extra_edges:40 ~max_w:5 in
  let tree, _ = Bfs.build g ~root:7 in
  Array.iteri
    (fun v p ->
      if v <> 7 then begin
        Alcotest.(check bool) "parent is neighbor" true
          (Graph.find_edge g v p <> None);
        check Alcotest.int "depth = parent depth + 1"
          (tree.Bfs.depth.(p) + 1) tree.Bfs.depth.(v)
      end)
    tree.Bfs.parent

let test_bfs_rounds_close_to_depth () =
  let g = Gen.path 20 in
  let tree, stats = Bfs.build g ~root:0 in
  Alcotest.(check bool) "rounds within constant of height" true
    (stats.Sim.rounds <= tree.Bfs.height + 3)

(* -------------------------------------------------------------- Tree_ops *)

let tree_of g root = fst (Bfs.build g ~root)

let test_upcast_collects_all () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  let tree = tree_of g 0 in
  let items, _ =
    Tree_ops.upcast g ~tree
      ~items:(fun v -> [ v; v + 100 ])
      ~bits:(fun x -> Dsf_util.Bitsize.int_bits (max 1 x))
  in
  check Alcotest.int "count" 18 (List.length items);
  List.iter
    (fun v ->
      Alcotest.(check bool) "contains v" true (List.mem v items);
      Alcotest.(check bool) "contains v+100" true (List.mem (v + 100) items))
    (List.init 9 Fun.id)

let test_upcast_pipelining_rounds () =
  (* Path of length L with all items at the far end: rounds ~ L + #items,
     not L * #items. *)
  let l = 15 and nitems = 10 in
  let g = Gen.path (l + 1) in
  let tree = tree_of g 0 in
  let items v = if v = l then List.init nitems Fun.id else [] in
  let _, stats =
    Tree_ops.upcast g ~tree ~items ~bits:(fun _ -> 4)
  in
  Alcotest.(check bool) "pipelined"
    true
    (stats.Sim.rounds <= l + nitems + 3)

let test_upcast_dedup () =
  let g = Gen.star 6 in
  let tree = tree_of g 0 in
  (* Every leaf holds the same two keyed items. *)
  let items v = if v = 0 then [] else [ "a", v; "b", v ] in
  let got, _ =
    Tree_ops.upcast_dedup g ~tree ~items ~key:fst ~bits:(fun _ -> 8)
  in
  check Alcotest.int "one per key" 2 (List.length got)

let test_broadcast_reaches_all () =
  let g = Gen.random_connected (rng 4) ~n:25 ~extra_edges:10 ~max_w:5 in
  let tree = tree_of g 3 in
  let payload = [ 10; 20; 30 ] in
  let all, stats =
    Tree_ops.broadcast g ~tree ~items:payload ~bits:(fun _ -> 6)
  in
  Array.iter (fun got -> check Alcotest.(list int) "full list" payload got) all;
  Alcotest.(check bool) "pipelined rounds" true
    (stats.Sim.rounds <= tree.Bfs.height + List.length payload + 3)

let test_aggregate_sum_and_count () =
  let g = Gen.grid ~rows:4 ~cols:5 in
  let tree = tree_of g 0 in
  let total, _ =
    Tree_ops.aggregate g ~tree
      ~value:(fun v -> v)
      ~combine:( + )
      ~bits:(fun _ -> 10)
  in
  check Alcotest.int "sum of ids" (19 * 20 / 2) total;
  let n, _ = Tree_ops.count_nodes g ~tree in
  check Alcotest.int "count = n" 20 n

let test_aggregate_min () =
  let g = Gen.cycle 9 in
  let tree = tree_of g 4 in
  let m, _ =
    Tree_ops.aggregate g ~tree
      ~value:(fun v -> 100 - v)
      ~combine:min
      ~bits:(fun _ -> 8)
  in
  check Alcotest.int "min" 92 m

(* ---------------------------------------------------------- Bellman_ford *)

let test_bf_matches_dijkstra () =
  let g = Gen.random_connected (rng 6) ~n:30 ~extra_edges:40 ~max_w:12 in
  let res, _ = Bellman_ford.sssp g ~src:0 in
  let dist, _ = Paths.dijkstra g ~src:0 in
  check Alcotest.(array int) "distances agree" dist res.Bellman_ford.dist

let test_bf_voronoi_assignment () =
  let g = Gen.path 7 in
  let res, _ = Bellman_ford.run g ~sources:[ 0, 0; 6, 0 ] in
  (* Node 3 is equidistant; tie goes to smaller source id 0. *)
  check Alcotest.int "tie to smaller source" 0 res.Bellman_ford.src_of.(3);
  check Alcotest.int "left side" 0 res.Bellman_ford.src_of.(1);
  check Alcotest.int "right side" 6 res.Bellman_ford.src_of.(5)

let test_bf_initial_distances () =
  (* Source 6 starts handicapped by 10: source 0 captures the whole path,
     including node 6 itself (dist 6 < handicap 10). *)
  let g = Gen.path 7 in
  let res, _ = Bellman_ford.run g ~sources:[ 0, 0; 6, 10 ] in
  check Alcotest.int "node 5 closer to 0" 0 res.Bellman_ford.src_of.(5);
  check Alcotest.int "source 6 itself captured" 0 res.Bellman_ford.src_of.(6);
  check Alcotest.int "dist via relaxation" 6 res.Bellman_ford.dist.(6);
  (* A mild handicap of 2 shifts the boundary by one node instead. *)
  let res2, _ = Bellman_ford.run g ~sources:[ 0, 0; 6, 2 ] in
  check Alcotest.int "node 4 to 0 under mild handicap" 0
    res2.Bellman_ford.src_of.(4);
  check Alcotest.int "node 5 still to 6" 6 res2.Bellman_ford.src_of.(5)

let test_bf_radius_cap () =
  let g = Gen.path 10 in
  let res, _ = Bellman_ford.run g ~radius:3 ~sources:[ 0, 0 ] in
  check Alcotest.int "inside" 0 res.Bellman_ford.src_of.(3);
  check Alcotest.int "outside unreached" (-1) res.Bellman_ford.src_of.(4)

let test_bf_weight_override () =
  (* Zero out the heavy edge: distances collapse. *)
  let g = Graph.make ~n:3 [ 0, 1, 10; 1, 2, 1 ] in
  let res, _ =
    Bellman_ford.run g ~weight_of:(fun _ -> 0) ~sources:[ 0, 0 ]
  in
  check Alcotest.(array int) "all zero" [| 0; 0; 0 |] res.Bellman_ford.dist

let test_bf_parent_tree () =
  let g = Gen.random_connected (rng 8) ~n:25 ~extra_edges:20 ~max_w:9 in
  let res, _ = Bellman_ford.sssp g ~src:5 in
  Array.iteri
    (fun v p ->
      if v <> 5 then begin
        Alcotest.(check bool) "parent adjacent" true (Graph.find_edge g v p <> None);
        let w =
          match Graph.find_edge g v p with
          | Some id -> (Graph.edge g id).Graph.w
          | None -> assert false
        in
        check Alcotest.int "dist consistent"
          (res.Bellman_ford.dist.(p) + w)
          res.Bellman_ford.dist.(v)
      end)
    res.Bellman_ford.parent

let test_bf_rounds_near_s () =
  (* On an unweighted path, BF stabilizes in ~s rounds. *)
  let g = Gen.path 30 in
  let res, _ = Bellman_ford.sssp g ~src:0 in
  Alcotest.(check bool) "rounds close to s" true
    (res.Bellman_ford.rounds >= 29 && res.Bellman_ford.rounds <= 35)

let prop_bf_equals_dijkstra =
  QCheck.Test.make ~name:"distributed BF = centralized dijkstra" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Gen.random_connected (rng seed) ~n:20 ~extra_edges:15 ~max_w:8 in
      let res, _ = Bellman_ford.sssp g ~src:0 in
      let dist, _ = Paths.dijkstra g ~src:0 in
      res.Bellman_ford.dist = dist)

(* -------------------------------------------------------------- Pipeline *)

let test_select_forest_is_kruskal () =
  let g = Gen.random_connected (rng 9) ~n:20 ~extra_edges:25 ~max_w:40 in
  let items =
    Array.to_list (Graph.edges g)
    |> List.map (fun (e : Graph.edge) ->
           { Pipeline.key = (e.w, e.id); a = e.u; b = e.v })
  in
  let forest = Pipeline.select_forest ~vn:20 ~pre:[] ~cmp:compare items in
  let weight = List.fold_left (fun acc it -> acc + fst it.Pipeline.key) 0 forest in
  check Alcotest.int "kruskal weight" (Mst.weight g) weight

let test_filtered_upcast_mst () =
  (* Distribute each edge to its smaller endpoint; the filtered upcast must
     deliver the MST to the root. *)
  let g = Gen.random_connected (rng 10) ~n:25 ~extra_edges:30 ~max_w:30 in
  let tree = tree_of g 0 in
  let items v =
    Array.to_list (Graph.edges g)
    |> List.filter_map (fun (e : Graph.edge) ->
           if min e.u e.v = v then
             Some { Pipeline.key = (e.w, e.id); a = e.u; b = e.v }
           else None)
  in
  let accepted, _ =
    Pipeline.filtered_upcast g ~tree ~vn:25 ~pre:[] ~items ~cmp:compare
      ~bits:(fun _ -> 30)
  in
  let weight = List.fold_left (fun acc it -> acc + fst it.Pipeline.key) 0 accepted in
  check Alcotest.int "MST via pipeline" (Mst.weight g) weight;
  check Alcotest.int "n-1 edges" 24 (List.length accepted)

let test_filtered_upcast_respects_pre () =
  (* With 0 and 1 pre-connected, an item joining them is filtered out. *)
  let g = Gen.path 4 in
  let tree = tree_of g 0 in
  let items v =
    if v = 3 then
      [
        { Pipeline.key = 1; a = 0; b = 1 };
        { Pipeline.key = 2; a = 1; b = 2 };
      ]
    else []
  in
  let accepted, _ =
    Pipeline.filtered_upcast g ~tree ~vn:3 ~pre:[ 0, 1 ] ~items ~cmp:compare
      ~bits:(fun _ -> 8)
  in
  check Alcotest.int "only one survives" 1 (List.length accepted);
  check Alcotest.int "the 1-2 item" 2 (List.hd accepted).Pipeline.key

let test_filtered_upcast_ascending_at_root () =
  let g = Gen.star 8 in
  let tree = tree_of g 0 in
  let items v = if v = 0 then [] else [ { Pipeline.key = 100 - v; a = 0; b = v } ] in
  let accepted, _ =
    Pipeline.filtered_upcast g ~tree ~vn:8 ~pre:[] ~items ~cmp:compare
      ~bits:(fun _ -> 8)
  in
  let keys = List.map (fun it -> it.Pipeline.key) accepted in
  check Alcotest.(list int) "ascending order" (List.sort compare keys) keys;
  check Alcotest.int "all accepted" 7 (List.length accepted)

let test_filtered_upcast_pipelining_rounds () =
  let l = 12 and nitems = 8 in
  let g = Gen.path (l + 1) in
  let tree = tree_of g 0 in
  let items v =
    if v = l then
      List.init nitems (fun i -> { Pipeline.key = i; a = 2 * i; b = (2 * i) + 1 })
    else []
  in
  let accepted, stats =
    Pipeline.filtered_upcast g ~tree ~vn:(2 * nitems) ~pre:[] ~items
      ~cmp:compare ~bits:(fun _ -> 8)
  in
  check Alcotest.int "all items" nitems (List.length accepted);
  Alcotest.(check bool) "rounds ~ depth + items" true
    (stats.Sim.rounds <= l + nitems + 5)

let test_filtered_upcast_early_stop () =
  (* The root aborts the collection after the second accepted item
     (Corollary 4.16's stop); rounds stay well below a full drain. *)
  let l = 30 in
  let g = Gen.path (l + 1) in
  let tree = tree_of g 0 in
  let items v =
    if v = l then
      List.init 20 (fun i -> { Pipeline.key = i; a = 2 * i; b = (2 * i) + 1 })
    else []
  in
  let accepted, stats =
    Pipeline.filtered_upcast
      ~stop_at_root:(fun acc -> List.length acc >= 2)
      g ~tree ~vn:40 ~pre:[] ~items ~cmp:compare
      ~bits:(fun _ -> 8)
  in
  check Alcotest.int "stopped at two" 2 (List.length accepted);
  Alcotest.(check bool) "aborted early" true
    (stats.Sim.rounds <= l + 6)

let prop_filtered_upcast_matches_centralized =
  QCheck.Test.make
    ~name:"distributed filtered upcast = centralized select_forest" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let r = rng seed in
      let g = Gen.random_connected r ~n:18 ~extra_edges:20 ~max_w:25 in
      let vn = 10 in
      (* Random items scattered over random holders. *)
      let items_all =
        List.init 25 (fun i ->
            let a = Dsf_util.Rng.int r vn and b = Dsf_util.Rng.int r vn in
            if a = b then None
            else Some (Dsf_util.Rng.int r 18, { Pipeline.key = i; a; b }))
        |> List.filter_map Fun.id
      in
      let items v = List.filter (fun (h, _) -> h = v) items_all |> List.map snd in
      let tree = tree_of g 0 in
      let accepted, _ =
        Pipeline.filtered_upcast g ~tree ~vn ~pre:[] ~items ~cmp:compare
          ~bits:(fun _ -> 16)
      in
      let reference =
        Pipeline.select_forest ~vn ~pre:[] ~cmp:compare (List.map snd items_all)
      in
      accepted = reference)

let suites =
  [
    ( "congest.sim",
      [
        Alcotest.test_case "flood rounds" `Quick test_sim_flood_rounds;
        Alcotest.test_case "rejects non-neighbor" `Quick test_sim_rejects_non_neighbor;
        Alcotest.test_case "round limit" `Quick test_sim_round_limit;
        Alcotest.test_case "bit accounting" `Quick test_sim_bit_accounting;
      ] );
    ("congest.ledger", [ Alcotest.test_case "ledger" `Quick test_ledger ]);
    ( "congest.bfs",
      [
        Alcotest.test_case "depths" `Quick test_bfs_tree_depths;
        Alcotest.test_case "parents consistent" `Quick test_bfs_tree_parents_consistent;
        Alcotest.test_case "rounds ~ depth" `Quick test_bfs_rounds_close_to_depth;
      ] );
    ( "congest.tree_ops",
      [
        Alcotest.test_case "upcast collects all" `Quick test_upcast_collects_all;
        Alcotest.test_case "upcast pipelines" `Quick test_upcast_pipelining_rounds;
        Alcotest.test_case "upcast dedup" `Quick test_upcast_dedup;
        Alcotest.test_case "broadcast" `Quick test_broadcast_reaches_all;
        Alcotest.test_case "aggregate sum/count" `Quick test_aggregate_sum_and_count;
        Alcotest.test_case "aggregate min" `Quick test_aggregate_min;
      ] );
    ( "congest.bellman_ford",
      [
        Alcotest.test_case "matches dijkstra" `Quick test_bf_matches_dijkstra;
        Alcotest.test_case "voronoi tie-break" `Quick test_bf_voronoi_assignment;
        Alcotest.test_case "initial distances" `Quick test_bf_initial_distances;
        Alcotest.test_case "radius cap" `Quick test_bf_radius_cap;
        Alcotest.test_case "weight override" `Quick test_bf_weight_override;
        Alcotest.test_case "parent tree consistent" `Quick test_bf_parent_tree;
        Alcotest.test_case "rounds ~ s" `Quick test_bf_rounds_near_s;
        qtest prop_bf_equals_dijkstra;
      ] );
    ( "congest.pipeline",
      [
        Alcotest.test_case "select_forest = kruskal" `Quick test_select_forest_is_kruskal;
        Alcotest.test_case "filtered upcast MST" `Quick test_filtered_upcast_mst;
        Alcotest.test_case "respects pre-connections" `Quick test_filtered_upcast_respects_pre;
        Alcotest.test_case "ascending at root" `Quick test_filtered_upcast_ascending_at_root;
        Alcotest.test_case "pipelining rounds" `Quick test_filtered_upcast_pipelining_rounds;
        Alcotest.test_case "early stop" `Quick test_filtered_upcast_early_stop;
        qtest prop_filtered_upcast_matches_centralized;
      ] );
  ]
