(* Dynamic ownership sanitizer (Sim.run_flat ~sanitize:true): the racy
   fixture's cross-partition write must abort with a structured
   Sanitizer_violation, an emit closure smuggled out of its step must be
   caught, and — the other half of the contract — a clean protocol must
   run bit-identically with the sanitizer on and off (states, stats, any
   jobs), faults included.  See the "Static analysis" section of
   HACKING.md for how this pairs with the typed domain-race lint rule. *)

open Dsf_graph
open Dsf_congest
module Racy = Dsf_lint_fixtures.Racy_flat

let check = Alcotest.check

let test_racy_fixture_trips () =
  let g = Gen.path 4 in
  let n = Graph.n g in
  (* Unsanitized, the racy protocol terminates quietly in one round (node
     0 steps once, mutating idle node 1's aliased state on the way): the
     race is silent data corruption, which is the point of the oracle. *)
  Racy.counter := 0;
  let states, stats = Sim.run_flat ~sanitize:false g (Racy.racy_protocol ~n) in
  check Alcotest.int "one round unsanitized" 1 stats.Sim.rounds;
  check Alcotest.int "node 0 stepped once" 1 !Racy.counter;
  check Alcotest.int "node 1's state was corrupted" 2 states.(1).Racy.x;
  (* Sanitized, the same run aborts at the first barrier with the victim
     node identified. *)
  Racy.counter := 0;
  match Sim.run_flat ~sanitize:true g (Racy.racy_protocol ~n) with
  | exception Sim.Sanitizer_violation v ->
      check Alcotest.string "kind" "idle-state-write" v.Sim.sv_kind;
      check Alcotest.int "victim node" 1 v.Sim.sv_node;
      check Alcotest.int "round" 0 v.Sim.sv_round;
      check Alcotest.int "owning domain" 0 v.Sim.sv_domain;
      let rendered = Printexc.to_string (Sim.Sanitizer_violation v) in
      check Alcotest.bool "registered printer renders the record" true
        (String.length rendered >= 4 && String.sub rendered 0 4 = "Sim.")
  | _ -> Alcotest.fail "sanitizer did not fire on the racy fixture"

let test_escaped_emit_trips () =
  (* An emit closure stashed in round 0 and fired from outside any step
     (here: the omniscient halt callback, which runs at the barrier) is
     the "smuggled closure" case the static rule cannot prove absent. *)
  let g = Gen.path 4 in
  let stash = ref None in
  let fp : (int, int) Sim.flat_protocol =
    {
      fp_init = (fun _ -> 0);
      fp_step =
        (fun _ ~round:_ st ~inbox:_ ~emit ->
          stash := Some emit;
          st);
      fp_is_done = (fun _ -> false);
      fp_msg_bits = (fun _ -> 1);
      fp_wake = None;
    }
  in
  let halt _ =
    (match !stash with Some emit -> emit ~dst:0 0 | None -> ());
    false
  in
  match Sim.run_flat ~sanitize:true ~halt g fp with
  | exception Sim.Sanitizer_violation v ->
      check Alcotest.string "kind" "emit-outside-step" v.Sim.sv_kind
  | _ -> Alcotest.fail "sanitizer did not catch the escaped emit closure"

let test_clean_run_bit_identical () =
  (* Every sanitizer check is read-only, so a clean flat protocol (BFS,
     the native exemplar) must produce bit-identical states and stats
     with the sanitizer armed, at any domain count. *)
  let g =
    Gen.random_connected (Dsf_util.Rng.create 42) ~n:257 ~extra_edges:300
      ~max_w:8
  in
  let n = Graph.n g in
  let root = Bfs.max_id_root g in
  let st_off, stats_off =
    Sim.run_flat ~jobs:1 ~sanitize:false g (Bfs.flat_protocol ~n ~root)
  in
  List.iter
    (fun jobs ->
      let st_on, stats_on =
        Sim.run_flat ~jobs ~sanitize:true g (Bfs.flat_protocol ~n ~root)
      in
      check Alcotest.bool
        (Printf.sprintf "states identical (jobs=%d)" jobs)
        true (st_on = st_off);
      check Alcotest.bool
        (Printf.sprintf "stats identical (jobs=%d)" jobs)
        true (stats_on = stats_off))
    [ 1; 2; 4 ]

let test_clean_faulted_run_bit_identical () =
  (* Fault injection exercises the other sanctioned write path (crash
     restarts re-init a node's state) plus dropped-mail inbox clearing;
     the sanitizer must stay silent and change nothing. *)
  let g = Gen.path 16 in
  let n = Graph.n g in
  let run ~sanitize =
    let plan = Fault.plan ~drop:0.3 ~crashes:[ 3, 2, 4 ] ~seed:7 () in
    Sim.run_flat ~faults:(Fault.instantiate plan) ~sanitize g
      (Bfs.flat_protocol ~n ~root:0)
  in
  let off = run ~sanitize:false in
  let on_ = run ~sanitize:true in
  check Alcotest.bool "faulted run identical under sanitizer" true (on_ = off)

let suites =
  [
    ( "sanitizer",
      [
        Alcotest.test_case "racy fixture trips idle-state-write" `Quick
          test_racy_fixture_trips;
        Alcotest.test_case "escaped emit closure is caught" `Quick
          test_escaped_emit_trips;
        Alcotest.test_case "clean run bit-identical" `Quick
          test_clean_run_bit_identical;
        Alcotest.test_case "clean faulted run bit-identical" `Quick
          test_clean_faulted_run_bit_identical;
      ] );
  ]
