(* The telemetry layer: golden renderings of every sink on a fully
   deterministic synthetic workload (injected counter clock), structural
   checks of span attribution on real algorithm runs, the pooled-merge
   bit-exactness property, and the regression that telemetry-off runs
   match seed behavior exactly.  Complements the one-branch differential
   in test_sim_equiv (telemetry on/off through both engines). *)

open Dsf_congest

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* Advances 1ms per read: create consumes one tick for the epoch, every
   span open/close consumes one each — all timestamps are determined by
   call order alone. *)
let counter_clock () =
  let t = ref 0L in
  fun () ->
    t := Int64.add !t 1_000_000L;
    !t

let const_clock () = 0L

(* A hand-driven workload touching every recorded field: two occurrences
   of "alpha" (sibling merge), a nested "beta" carrying fault counters
   and a budget violation, engine rounds in both. *)
let synthetic () =
  let tel = Telemetry.create ~clock:(counter_clock ()) () in
  Telemetry.span tel "alpha" (fun () ->
      Telemetry.sim_round tel ~stepped:3 ~delivered:2 ~bits:10 ~wake_hits:1;
      Telemetry.sim_run tel ~rounds:4 ~messages:9 ~bits:40
        ~max_edge_round_bits:6 ~budget_violations:0 ~dropped:0 ~duplicated:0
        ~retransmissions:0;
      Telemetry.span tel "beta" (fun () ->
          Telemetry.sim_round tel ~stepped:1 ~delivered:1 ~bits:4 ~wake_hits:0;
          Telemetry.sim_run tel ~rounds:2 ~messages:3 ~bits:12
            ~max_edge_round_bits:4 ~budget_violations:1 ~dropped:2
            ~duplicated:1 ~retransmissions:5));
  Telemetry.span tel "alpha" (fun () -> ());
  tel

let golden name expected actual =
  if actual <> expected then begin
    let path =
      Filename.concat (Filename.get_temp_dir_name ()) ("dsf_golden_" ^ name)
    in
    let oc = open_out path in
    output_string oc actual;
    close_out oc;
    Alcotest.failf "%s differs from golden (actual written to %s)" name path
  end

let golden_console =
  {golden|span tree (sim metrics inclusive of children):
  alpha                              count=2   wall=4.000ms rounds=6 msgs=12 bits=52 merb=6 violations=1 dropped=2 duplicated=1 retransmissions=5
    beta                             count=1   wall=1.000ms rounds=2 msgs=3 bits=12 merb=4 violations=1 dropped=2 duplicated=1 retransmissions=5
metrics:
  sim/bits_per_round               count=2 sum=14 min=4 max=10 [4..7]:1 [8..15]:1
  sim/delivered_per_round          count=2 sum=3 min=1 max=2 [1]:1 [2..3]:1
  sim/rounds                       2
  sim/runs                         2
  sim/stepped_per_round            count=2 sum=4 min=1 max=3 [1]:1 [2..3]:1
  sim/wake_hits                    1|golden}

let golden_jsonl =
  {golden|{"type": "meta", "schema": "dsf-telemetry/1", "events": 3}
{"type": "span", "name": "beta", "tid": 0, "start_ns": 2000000, "dur_ns": 1000000, "rounds": 2, "bits": 12}
{"type": "span", "name": "alpha", "tid": 0, "start_ns": 1000000, "dur_ns": 3000000, "rounds": 4, "bits": 40}
{"type": "span", "name": "alpha", "tid": 0, "start_ns": 5000000, "dur_ns": 1000000, "rounds": 0, "bits": 0}
{"type": "profile", "path": "alpha", "count": 2, "wall_ns": 4000000, "rounds": 4, "messages": 9, "bits": 40, "max_edge_round_bits": 6, "budget_violations": 0, "dropped": 0, "duplicated": 0, "retransmissions": 0, "ledger_simulated": 0, "ledger_charged": 0}
{"type": "profile", "path": "alpha/beta", "count": 1, "wall_ns": 1000000, "rounds": 2, "messages": 3, "bits": 12, "max_edge_round_bits": 4, "budget_violations": 1, "dropped": 2, "duplicated": 1, "retransmissions": 5, "ledger_simulated": 0, "ledger_charged": 0}
{"type": "histogram", "name": "sim/bits_per_round", "count": 2, "sum": 14, "min": 4, "max": 10, "buckets": [[3, 1], [4, 1]]}
{"type": "histogram", "name": "sim/delivered_per_round", "count": 2, "sum": 3, "min": 1, "max": 2, "buckets": [[1, 1], [2, 1]]}
{"type": "counter", "name": "sim/rounds", "value": 2}
{"type": "counter", "name": "sim/runs", "value": 2}
{"type": "histogram", "name": "sim/stepped_per_round", "count": 2, "sum": 4, "min": 1, "max": 3, "buckets": [[1, 1], [2, 1]]}
{"type": "counter", "name": "sim/wake_hits", "value": 1}
|golden}

let golden_chrome =
  {golden|{"displayTimeUnit": "ms", "traceEvents": [
{"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "dsf"}},
{"name": "thread_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "main"}},
{"name": "beta", "ph": "X", "pid": 1, "tid": 0, "ts": 2000.000, "dur": 1000.000, "args": {"rounds": 2, "bits": 12}},
{"name": "alpha", "ph": "X", "pid": 1, "tid": 0, "ts": 1000.000, "dur": 3000.000, "args": {"rounds": 4, "bits": 40}},
{"name": "alpha", "ph": "X", "pid": 1, "tid": 0, "ts": 5000.000, "dur": 1000.000, "args": {"rounds": 0, "bits": 0}}
]}
|golden}

let test_golden_console () =
  golden "console" golden_console
    (Format.asprintf "%a" Telemetry.pp (synthetic ()))

let test_golden_jsonl () =
  golden "jsonl" golden_jsonl (Telemetry.to_jsonl_string (synthetic ()))

let test_golden_chrome () =
  golden "chrome" golden_chrome (Telemetry.to_chrome_string (synthetic ()))

(* ------------------------------------------------- span tree structure *)

let small_instance seed =
  let r = Dsf_util.Rng.create seed in
  let g = Dsf_graph.Gen.random_connected r ~n:24 ~extra_edges:18 ~max_w:8 in
  let labels = Dsf_graph.Gen.random_labels r ~n:24 ~t:6 ~k:2 in
  Dsf_graph.Instance.make_ic g labels

let test_det_phase_tree () =
  let inst = small_instance 11 in
  let tel = Telemetry.create ~clock:const_clock () in
  let r = Dsf_core.Det_dsf.run ~telemetry:tel inst in
  List.iter
    (fun path ->
      Alcotest.(check bool)
        (String.concat "/" path) true
        (Option.is_some (Telemetry.find tel path)))
    [
      [ "minimalize" ];
      [ "setup" ];
      [ "phase" ];
      [ "phase"; "region_bf" ];
      [ "phase"; "filtered_upcast" ];
      [ "final"; "token_flood" ];
    ];
  (* The tree's engine totals must add up to the ledger's simulated rounds:
     every simulated subroutine ran inside some span. *)
  let rec total (s : Telemetry.span) =
    List.fold_left (fun acc c -> acc + total c) s.Telemetry.rounds
      s.Telemetry.children
  in
  let tree_rounds =
    List.fold_left (fun acc s -> acc + total s) 0 (Telemetry.root_spans tel)
  in
  check Alcotest.int "tree rounds = ledger simulated"
    (Ledger.simulated r.Dsf_core.Det_dsf.ledger)
    tree_rounds

let test_sublinear_phase_tree () =
  let inst = small_instance 12 in
  let tel = Telemetry.create ~clock:const_clock () in
  ignore (Dsf_core.Det_sublinear.run ~telemetry:tel ~eps_num:1 ~eps_den:2 inst);
  List.iter
    (fun path ->
      Alcotest.(check bool)
        (String.concat "/" path) true
        (Option.is_some (Telemetry.find tel path)))
    [
      [ "setup" ];
      [ "growth"; "merge_phase"; "region_bf" ];
      [ "growth"; "activity" ];
      [ "final" ];
    ]

(* ------------------------------------------------------- pooled merging *)

(* The full fork/merge discipline end-to-end: Rand_dsf's repetition
   fan-out must produce the identical telemetry — span tree, events,
   metrics, every rendering — for any jobs.  The constant clock removes
   the one legitimately nondeterministic field. *)
let prop_pool_merge_jobs_invariant =
  QCheck.Test.make ~name:"rand_dsf telemetry is jobs-invariant" ~count:4
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let inst = small_instance seed in
      let render jobs =
        let tel = Telemetry.create ~clock:const_clock () in
        let r =
          Dsf_core.Rand_dsf.run ~telemetry:tel ~repetitions:4 ~jobs
            ~rng:(Dsf_util.Rng.create (seed + 1))
            inst
        in
        ( r.Dsf_core.Rand_dsf.weight,
          Format.asprintf "%a" Telemetry.pp tel,
          Telemetry.to_jsonl_string tel,
          Telemetry.to_chrome_string tel )
      in
      let j1 = render 1 in
      j1 = render 2 && j1 = render 4)

(* Metrics registries merged in trial order are bit-identical to filling a
   single registry sequentially — the commutative-monoid fact the pooled
   discipline rests on — regardless of the interleaving the domains
   actually executed. *)
let prop_metrics_merge_order_independent =
  QCheck.Test.make ~name:"metrics merge = sequential fill" ~count:50
    QCheck.(list_of_size Gen.(1 -- 40) (pair (int_range 0 3) (int_range 0 200)))
    (fun ops ->
      let apply m (key, v) =
        match key with
        | 0 -> Dsf_util.Metrics.incr m "a" v
        | 1 -> Dsf_util.Metrics.incr m "b" v
        | 2 -> Dsf_util.Metrics.observe m "h" v
        | _ -> Dsf_util.Metrics.observe m "g" v
      in
      let sequential = Dsf_util.Metrics.create () in
      List.iter (apply sequential) ops;
      (* Split the op stream across three "trial" registries round-robin
         (simulating arbitrary domain assignment), then merge in order. *)
      let forks = Array.init 3 (fun _ -> Dsf_util.Metrics.create ()) in
      List.iteri (fun i op -> apply forks.(i mod 3) op) ops;
      let merged = Dsf_util.Metrics.create () in
      Array.iter (fun f -> Dsf_util.Metrics.merge_into ~dst:merged f) forks;
      Format.asprintf "%a" Dsf_util.Metrics.pp merged
      = Format.asprintf "%a" Dsf_util.Metrics.pp sequential)

(* ------------------------------------------------------ off = untouched *)

(* ?telemetry:None must leave the algorithms bit-identical to the seed
   behavior: same solution, same weight, same ledger totals as a run that
   never mentions telemetry at all — and the instrumented run must agree
   too (the hook only observes). *)
let test_telemetry_off_matches_seed () =
  let inst = small_instance 21 in
  let bare = Dsf_core.Det_dsf.run inst in
  let off = Dsf_core.Det_dsf.run ?telemetry:None inst in
  let tel = Telemetry.create ~clock:const_clock () in
  let on = Dsf_core.Det_dsf.run ~telemetry:tel inst in
  List.iter
    (fun (name, (r : Dsf_core.Det_dsf.result)) ->
      check Alcotest.int (name ^ " weight") bare.Dsf_core.Det_dsf.weight
        r.Dsf_core.Det_dsf.weight;
      check
        Alcotest.(array bool)
        (name ^ " solution") bare.Dsf_core.Det_dsf.solution
        r.Dsf_core.Det_dsf.solution;
      check Alcotest.int (name ^ " simulated")
        (Ledger.simulated bare.Dsf_core.Det_dsf.ledger)
        (Ledger.simulated r.Dsf_core.Det_dsf.ledger);
      check Alcotest.int (name ^ " charged")
        (Ledger.charged bare.Dsf_core.Det_dsf.ledger)
        (Ledger.charged r.Dsf_core.Det_dsf.ledger))
    [ "off", off; "on", on ]

let suites =
  [
    ( "congest.telemetry",
      [
        Alcotest.test_case "golden console tree" `Quick test_golden_console;
        Alcotest.test_case "golden jsonl" `Quick test_golden_jsonl;
        Alcotest.test_case "golden chrome trace" `Quick test_golden_chrome;
        Alcotest.test_case "det_dsf phase tree" `Quick test_det_phase_tree;
        Alcotest.test_case "det_sublinear phase tree" `Quick
          test_sublinear_phase_tree;
        qtest prop_pool_merge_jobs_invariant;
        qtest prop_metrics_merge_order_independent;
        Alcotest.test_case "telemetry off = seed behavior" `Quick
          test_telemetry_off_matches_seed;
      ] );
  ]
