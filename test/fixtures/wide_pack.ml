(* NEGATIVE FIXTURE — CONGEST width violations for the typed
   congest-width rule (test_lint scans this library's .cmt).  None of
   these functions is ever called: [Pack.layout [40; 40]] would raise
   [Invalid_argument] at runtime, but the point is that the lint proves
   it over-wide *statically*.  Do not "fix" and do not link outside the
   test binary. *)

module Pack = Dsf_util.Pack
module Sim = Dsf_congest.Sim

(* 40 + 40 = 80 bits > the 62-bit immediate-int ceiling. *)
let too_wide () = Pack.layout [ 40; 40 ]

(* Width is an arbitrary runtime value: the checker cannot bound it, and
   an unverifiable layout is itself a finding. *)
let unverifiable w = Pack.layout [ w; 4 ]

(* Declared per-message cost of 200 bits: not O(log n)-representable and
   over the 62-bit word besides. *)
let chatty : (int, int) Sim.flat_protocol =
  {
    fp_init = (fun _ -> 0);
    fp_step = (fun _ ~round:_ st ~inbox:_ ~emit:_ -> st);
    fp_is_done = (fun _ -> true);
    fp_msg_bits = (fun _ -> 200);
    fp_wake = None;
  }
