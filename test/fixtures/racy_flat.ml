(* NEGATIVE FIXTURE — deliberately racy flat protocol.
   This is the seeded cross-domain write the typed domain-race rule must
   flag (test_lint scans this library's .cmt) and the runtime ownership
   sanitizer must abort on (test_sanitizer runs it under
   [Sim.run_flat ~sanitize:true]).  Do not "fix" it and do not link it
   outside the test binary.

   Two distinct violations live in [fp_step]:
   - [incr counter]: mutation of a toplevel ref captured by the step —
     shared state across every node and domain;
   - [other.x <- ...] where [other = cells.((v + 1) mod n)]: indexing the
     captured per-node storage with a key that is *not* the stepping
     node's own id, i.e. writing a neighbor's slot.  (Writing
     [cells.(view.node)] would be the sanctioned own-slot idiom.)

   [fp_init] aliases node [v]'s state to [cells.(v)], which the static
   pass cannot see as an escape — that is exactly the gap the dynamic
   sanitizer covers: node 0's step mutates [cells.(1)] while node 1 sits
   idle, so node 1's state hash moves between barriers and the engine
   raises [Sim.Sanitizer_violation { sv_kind = "idle-state-write"; _ }]. *)

module Sim = Dsf_congest.Sim

type cell = { mutable x : int }

let counter = ref 0

(* Node 0 starts not-done and steps once; everyone else is born done and
   never steps (wake is [never], so the sparse scheduler applies).  The
   single step pushes node 0 to done without sending mail, so the
   unsanitized run terminates after one round. *)
let racy_protocol ~n : (cell, int) Sim.flat_protocol =
  let cells = Array.init n (fun i -> { x = (if i = 0 then 0 else 1) }) in
  {
    fp_init = (fun view -> cells.(view.Sim.node));
    fp_step =
      (fun view ~round:_ st ~inbox:_ ~emit:_ ->
        incr counter;
        let v = view.Sim.node in
        let other = cells.((v + 1) mod n) in
        other.x <- other.x + 1;
        st.x <- st.x + 2;
        st);
    fp_is_done = (fun st -> st.x > 0);
    fp_msg_bits = (fun _ -> 1);
    fp_wake = Some Sim.never;
  }
